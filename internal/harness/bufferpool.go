package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"time"

	"repro/internal/db"
	"repro/internal/hwmode"
	"repro/internal/oid"
	"repro/internal/reorg"
)

// This file is the `bufferpool` benchmark: the measurement the paper's
// headline claim rests on. Re-clustering is only worth doing on-line if
// it actually lowers the page-fault rate of reference traversals — so
// the benchmark builds a reference chain, decays its layout with a
// shuffled churn pass, measures the cold-scan fault rate against a small
// buffer pool, re-clusters the partition with a traversal-ordered dense
// reorganization, and measures again. The JSON report (BENCH_bufferpool
// .json) carries both rates so successive commits can be compared.

// BufferpoolScan aggregates the pool counters over the cold scans of one
// layout.
type BufferpoolScan struct {
	Hits      uint64  `json:"hits"`
	Misses    uint64  `json:"misses"`
	FaultRate float64 `json:"fault_rate"`
}

// BufferpoolReport is the persisted shape of one bufferpool trajectory
// (one hardware/fidelity mode); BufferpoolBench is the on-disk wrapper
// that carries one trajectory per mode.
type BufferpoolReport struct {
	Timestamp    string         `json:"timestamp"`
	Scale        string         `json:"scale"`
	Env          BenchEnv       `json:"env"`
	PageSize     int            `json:"page_size"`
	PoolFrames   int            `json:"pool_frames"`
	Objects      int            `json:"objects"`
	PayloadBytes int            `json:"payload_bytes"`
	Scans        int            `json:"scans"`
	LivePages    int            `json:"live_pages"`
	Declustered  BufferpoolScan `json:"declustered"`
	Clustered    BufferpoolScan `json:"clustered"`
	// FaultRateRatio is declustered over clustered fault rate: how many
	// times fewer faults a traversal takes after the clustering pass.
	FaultRateRatio float64 `json:"fault_rate_ratio"`
	ReorgMs        float64 `json:"reorg_ms"`
	Migrated       int     `json:"migrated"`
}

const bufferpoolPart = oid.PartitionID(1)

// livePages counts the bench partition's allocated pages.
func livePages(d *db.Database) int {
	st, err := d.Store().PartitionStats(bufferpoolPart)
	if err != nil {
		return 0
	}
	return st.Pages
}

// BufferpoolBench is the persisted BENCH_bufferpool.json shape: one
// fault-rate trajectory per execution mode over the same chain.
type BufferpoolBench struct {
	Timestamp    string              `json:"timestamp"`
	Scale        string              `json:"scale"`
	GOMAXPROCS   int                 `json:"gomaxprocs"`
	NumCPU       int                 `json:"num_cpu"`
	Trajectories []*BufferpoolReport `json:"trajectories"`
}

// RunBufferpool runs the benchmark once per requested execution mode and
// writes the JSON report to out. It fails if any trajectory's clustered
// layout does not beat the declustered one — that regression would
// invalidate the repo's central measurement.
func RunBufferpool(w io.Writer, sc Scale, out string) error {
	bench := &BufferpoolBench{
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		Scale:      sc.Name,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
	for _, mode := range sc.modes() {
		rep, err := runBufferpoolOnce(w, sc, mode)
		if err != nil {
			return err
		}
		bench.Trajectories = append(bench.Trajectories, rep)
	}
	data, err := json.MarshalIndent(bench, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "bufferpool: report written to %s\n", out)
	return nil
}

// runBufferpoolOnce runs one trajectory of the benchmark in the given
// execution mode. The scan itself is single-threaded, so the fidelity
// and hardware numbers should agree within noise — the pair is the
// sanity check that the hardware-mode WAL and latching changes do not
// disturb placement or the pool's fault accounting.
func runBufferpoolOnce(w io.Writer, sc Scale, mode hwmode.Mode) (*BufferpoolReport, error) {
	objects, payload, frames, scans := 1536, 160, 16, 3
	if sc.Name == "full" {
		objects, scans = 6144, 5
	}

	dir, err := os.MkdirTemp("", "bufferpool-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	cfg := db.DefaultConfig()
	env := applyMode(mode, nil, &cfg)
	cfg.PageSize = 4096
	cfg.FlushLatency = 0
	cfg.DiskBacked = true
	cfg.DataDir = dir
	cfg.PoolFrames = frames
	d := db.Open(cfg)
	defer d.Close()

	anchor, err := buildChain(d, objects, payload)
	if err != nil {
		return nil, fmt.Errorf("bufferpool: build chain: %w", err)
	}

	// Decay the layout: a shuffled first-fit self-migration decorrelates
	// page placement from reference order, like years of churn would.
	if _, err := shuffleChurn(d, bufferpoolPart, sc.Params.Seed); err != nil {
		return nil, fmt.Errorf("bufferpool: decluster: %w", err)
	}
	declustered, err := coldScan(d, anchor, scans)
	if err != nil {
		return nil, fmt.Errorf("bufferpool: declustered scan: %w", err)
	}

	// Re-cluster: migrate the whole partition densely in traversal
	// order, so consecutive chain hops land on the same page.
	reorgStart := time.Now()
	migrated, err := clusterPass(d, anchor)
	if err != nil {
		return nil, fmt.Errorf("bufferpool: cluster reorg: %w", err)
	}
	reorgMs := ms(time.Since(reorgStart))
	clustered, err := coldScan(d, anchor, scans)
	if err != nil {
		return nil, fmt.Errorf("bufferpool: clustered scan: %w", err)
	}

	rep := &BufferpoolReport{
		Timestamp:    time.Now().UTC().Format(time.RFC3339),
		Scale:        sc.Name,
		Env:          env,
		PageSize:     cfg.PageSize,
		PoolFrames:   frames,
		Objects:      objects,
		PayloadBytes: payload,
		Scans:        scans,
		LivePages:    livePages(d),
		Declustered:  declustered,
		Clustered:    clustered,
		ReorgMs:      reorgMs,
		Migrated:     migrated,
	}
	if clustered.FaultRate > 0 {
		rep.FaultRateRatio = declustered.FaultRate / clustered.FaultRate
	}
	fmt.Fprintf(w, "bufferpool[%s]: %d objects over %d live pages, %d-frame pool\n",
		env.Mode, rep.Objects, rep.LivePages, rep.PoolFrames)
	fmt.Fprintf(w, "bufferpool[%s]: cold-scan fault rate %.3f declustered -> %.3f clustered (%.1fx)\n",
		env.Mode, declustered.FaultRate, clustered.FaultRate, rep.FaultRateRatio)
	if clustered.FaultRate >= declustered.FaultRate {
		return nil, fmt.Errorf("bufferpool[%s]: clustering did not reduce the fault rate (%.3f -> %.3f)",
			env.Mode, declustered.FaultRate, clustered.FaultRate)
	}
	return rep, nil
}

// buildChain creates a singly-linked chain of n objects in the bench
// partition (tail first, so every reference targets an existing object)
// and returns a partition-0 anchor referencing the head. The anchor
// stays put during reorganizations; its reference is retargeted through
// the ERT like any other external reference.
func buildChain(d *db.Database, n, payload int) (oid.OID, error) {
	if err := d.CreatePartition(0); err != nil {
		return oid.Nil, err
	}
	if err := d.CreatePartition(bufferpoolPart); err != nil {
		return oid.Nil, err
	}
	var next oid.OID
	buf := make([]byte, payload)
	for i := n - 1; i >= 0; {
		tx, err := d.Begin()
		if err != nil {
			return oid.Nil, err
		}
		for batch := 0; batch < 256 && i >= 0; batch, i = batch+1, i-1 {
			copy(buf, fmt.Sprintf("chain-%d", i))
			var refs []oid.OID
			if !next.IsNil() {
				refs = []oid.OID{next}
			}
			o, err := tx.Create(bufferpoolPart, buf, refs)
			if err != nil {
				tx.Abort()
				return oid.Nil, err
			}
			next = o
		}
		if err := tx.Commit(); err != nil {
			return oid.Nil, err
		}
	}
	tx, err := d.Begin()
	if err != nil {
		return oid.Nil, err
	}
	anchor, err := tx.Create(0, []byte("bufferpool-anchor"), []oid.OID{next})
	if err != nil {
		tx.Abort()
		return oid.Nil, err
	}
	return anchor, tx.Commit()
}

// walkChain follows the chain from the anchor, returning the objects in
// traversal order.
func walkChain(d *db.Database, anchor oid.OID) ([]oid.OID, error) {
	tx, err := d.Begin()
	if err != nil {
		return nil, err
	}
	defer tx.Commit()
	var order []oid.OID
	cur := anchor
	for {
		refs, err := tx.ReadRefs(cur)
		if err != nil {
			return nil, err
		}
		if len(refs) == 0 {
			return order, nil
		}
		cur = refs[0]
		order = append(order, cur)
	}
}

// coldScan empties the pool, walks the chain, and repeats, returning the
// aggregated hit/miss counters of the traversals alone.
func coldScan(d *db.Database, anchor oid.OID, scans int) (BufferpoolScan, error) {
	st := d.Store()
	var res BufferpoolScan
	for s := 0; s < scans; s++ {
		if err := st.EvictAll(); err != nil {
			return res, err
		}
		before := st.PoolStats()
		if _, err := walkChain(d, anchor); err != nil {
			return res, err
		}
		after := st.PoolStats()
		res.Hits += after.Hits - before.Hits
		res.Misses += after.Misses - before.Misses
	}
	if total := res.Hits + res.Misses; total > 0 {
		res.FaultRate = float64(res.Misses) / float64(total)
	}
	return res, nil
}

// clusterPass migrates the bench partition densely in traversal order.
func clusterPass(d *db.Database, anchor oid.OID) (int, error) {
	order, err := walkChain(d, anchor)
	if err != nil {
		return 0, err
	}
	rank := make(map[oid.OID]int, len(order))
	for i, o := range order {
		rank[o] = i
	}
	plan := reorg.CompactPlan(bufferpoolPart)
	r := reorg.New(d, bufferpoolPart, reorg.Options{
		Mode: reorg.ModeOffline,
		Plan: &plan,
		MigrationOrder: func(objects []oid.OID) []oid.OID {
			sort.Slice(objects, func(i, j int) bool {
				ri, iok := rank[objects[i]]
				rj, jok := rank[objects[j]]
				if iok != jok {
					return iok // reachable objects first
				}
				if !iok {
					return objects[i] < objects[j]
				}
				return ri < rj
			})
			return objects
		},
	})
	if err := r.Run(); err != nil {
		return 0, err
	}
	return r.Stats().Migrated, nil
}
