package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/db"
	"repro/internal/hwmode"
	"repro/internal/lock"
	"repro/internal/oid"
	"repro/internal/reorg"
)

// This file is the `lockscale` benchmark: the perf-trajectory harness for
// the concurrency hot paths. Per execution mode (fidelity and hardware —
// see mode.go) it measures and writes to a JSON report (BENCH_lock.json
// by default) so successive runs can be compared across commits:
//
//  1. a micro sweep — raw Begin/Lock/Finish throughput of the striped and
//     the reference (single-mutex) manager at 1/2/4/8 goroutines, plus the
//     striped/reference speedup at 8 goroutines. The fidelity sweep is
//     pinned to GOMAXPROCS=1 (the paper's uniprocessor — striping is
//     *expected* to lose there, and the number is host-independent); the
//     hardware sweep runs at full GOMAXPROCS, where striping must win on
//     any multicore host, and the speedup is asserted.
//  2. a workload sweep — the full system (MPL transaction threads × fleet
//     reorganization workers) per grid cell, reporting transaction
//     throughput, mean and p99 response time, reorganization duration and
//     the lock manager's cumulative counters.
//  3. hardware mode only: a commit-throughput sweep — disjoint-object
//     committers at MPL 8 and 16 under WAL group commit versus the naive
//     per-commit-sync baseline. Group commit must win: every committer in
//     a flush window piggybacks on one simulated device write.

// LockMicroPoint is one cell of the micro sweep.
type LockMicroPoint struct {
	Impl       string  `json:"impl"`
	Goroutines int     `json:"goroutines"`
	Ops        uint64  `json:"ops"`
	Seconds    float64 `json:"seconds"`
	OpsPerSec  float64 `json:"ops_per_sec"`
}

// LockWorkloadPoint is one cell of the workload sweep.
type LockWorkloadPoint struct {
	MPL           int     `json:"mpl"`
	Workers       int     `json:"workers"`
	Throughput    float64 `json:"throughput_tps"`
	MeanMs        float64 `json:"mean_ms"`
	P99Ms         float64 `json:"p99_ms"`
	ReorgMs       float64 `json:"reorg_ms"`
	Migrated      int     `json:"migrated"`
	LocksAcquired uint64  `json:"locks_acquired"`
	LockWaits     uint64  `json:"lock_waits"`
	LockTimeouts  uint64  `json:"lock_timeouts"`
}

// LockCommitPoint is one cell of the hardware-mode commit-throughput
// sweep: MPL disjoint-object committers under one WAL sync discipline.
type LockCommitPoint struct {
	Sync          string  `json:"sync"` // "group" or "percommit"
	MPL           int     `json:"mpl"`
	Commits       uint64  `json:"commits"`
	Seconds       float64 `json:"seconds"`
	CommitsPerSec float64 `json:"commits_per_sec"`
}

// LockScaleSweep is one execution mode's trajectory of the lockscale
// benchmark.
type LockScaleSweep struct {
	Env        BenchEnv         `json:"env"`
	Micro      []LockMicroPoint `json:"micro"`
	SpeedupAt8 float64          `json:"speedup_at_8"`
	// SpeedupAsserted records whether SpeedupAt8 was held to the > 1.0
	// bar: only the hardware sweep on a multicore host asserts it. The
	// fidelity number is a uniprocessor artifact (striping adds overhead
	// with nothing to parallelize) and is recorded, never judged.
	SpeedupAsserted bool                `json:"speedup_asserted"`
	SpeedupNote     string              `json:"speedup_note,omitempty"`
	Workload        []LockWorkloadPoint `json:"workload"`
	// Commit and GroupCommitSpeedup are hardware mode only.
	Commit []LockCommitPoint `json:"commit,omitempty"`
	// GroupCommitSpeedup is group over percommit commits/sec at the
	// sweep's lowest MPL (8).
	GroupCommitSpeedup float64 `json:"group_commit_speedup_at_mpl8,omitempty"`
}

// LockScaleReport is the persisted shape of one lockscale run.
type LockScaleReport struct {
	Timestamp  string           `json:"timestamp"`
	Scale      string           `json:"scale"`
	GOMAXPROCS int              `json:"gomaxprocs"`
	NumCPU     int              `json:"num_cpu"`
	Sweeps     []LockScaleSweep `json:"sweeps"`
}

// lockMicro measures aggregate Begin/Lock/Finish throughput of manager m
// with g goroutines over roughly d. Each goroutine locks a disjoint OID
// pool so every cycle is conflict-free: the only contention is on the
// manager's own structures, which is the axis striping addresses.
func lockMicro(m *lock.Manager, g int, d time.Duration) (uint64, float64) {
	var (
		ops  atomic.Uint64
		stop atomic.Bool
		wg   sync.WaitGroup
	)
	start := time.Now()
	for w := 0; w < g; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			pool := make([]oid.OID, 64)
			for i := range pool {
				pool[i] = oid.New(oid.PartitionID(w+1), oid.PageNum(i/8+1), oid.SlotNum(i%8))
			}
			txn := lock.TxnID(uint64(w)<<32 + 1)
			var n uint64
			for !stop.Load() {
				txn++
				m.Begin(txn)
				m.Lock(txn, pool[n%uint64(len(pool))], lock.Exclusive)
				m.Finish(txn)
				n++
			}
			ops.Add(n)
		}(w)
	}
	time.Sleep(d)
	stop.Store(true)
	wg.Wait()
	return ops.Load(), time.Since(start).Seconds()
}

// commitThroughput measures commits/sec of mpl committers over roughly d,
// each repeatedly updating its own private object — no lock conflicts, so
// the commit path (WAL append + flush wait) is the whole cost. The db
// uses the default 2 ms simulated log device: under group commit all
// committers in a window share one 2 ms write; under per-commit sync each
// commit pays its own.
func commitThroughput(groupCommit bool, mpl int, d time.Duration) (uint64, float64, error) {
	cfg := db.DefaultConfig()
	cfg.GroupCommit = groupCommit
	cfg.WALPerCommitSync = !groupCommit
	dbase := db.Open(cfg)
	defer dbase.Close()
	if err := dbase.CreatePartition(1); err != nil {
		return 0, 0, err
	}
	payload := []byte("commit-throughput-cell-payload")
	objs := make([]oid.OID, mpl)
	tx, err := dbase.Begin()
	if err != nil {
		return 0, 0, err
	}
	for i := range objs {
		if objs[i], err = tx.Create(1, payload, nil); err != nil {
			tx.Abort()
			return 0, 0, err
		}
	}
	if err := tx.Commit(); err != nil {
		return 0, 0, err
	}

	var (
		commits atomic.Uint64
		stop    atomic.Bool
		wg      sync.WaitGroup
		fail    atomic.Pointer[error]
	)
	start := time.Now()
	for c := 0; c < mpl; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for !stop.Load() {
				tx, err := dbase.Begin()
				if err != nil {
					fail.CompareAndSwap(nil, &err)
					return
				}
				if err := tx.Lock(objs[c], lock.Exclusive); err != nil {
					tx.Abort()
					fail.CompareAndSwap(nil, &err)
					return
				}
				if err := tx.UpdatePayload(objs[c], payload); err != nil {
					tx.Abort()
					fail.CompareAndSwap(nil, &err)
					return
				}
				if err := tx.Commit(); err != nil {
					fail.CompareAndSwap(nil, &err)
					return
				}
				commits.Add(1)
			}
		}(c)
	}
	time.Sleep(d)
	stop.Store(true)
	wg.Wait()
	secs := time.Since(start).Seconds()
	if e := fail.Load(); e != nil {
		return 0, 0, *e
	}
	return commits.Load(), secs, nil
}

// runLockScaleSweep runs one mode's trajectory.
func runLockScaleSweep(w io.Writer, sc Scale, mode hwmode.Mode) (LockScaleSweep, error) {
	params := sc.Params
	dbcfg := db.DefaultConfig()
	sweep := LockScaleSweep{Env: applyMode(mode, &params, &dbcfg)}
	fmt.Fprintf(w, "=== %s mode (GOMAXPROCS=%d, NumCPU=%d, cpu_tokens=%d, group_commit=%v, reader_shards=%d)\n",
		mode, sweep.Env.GOMAXPROCS, sweep.Env.NumCPU, sweep.Env.CPUTokens,
		sweep.Env.GroupCommit, sweep.Env.ReaderShards)

	// Micro sweep: striped vs reference at each goroutine count. The
	// fidelity trajectory pins GOMAXPROCS to 1 for the duration — the
	// paper's uniprocessor, and a number that does not depend on how many
	// cores the CI runner happens to have.
	micro := sc.LockScaleMicroDuration
	if micro <= 0 {
		micro = 150 * time.Millisecond
	}
	restoreProcs := func() {}
	if mode == hwmode.Fidelity {
		prev := runtime.GOMAXPROCS(1)
		restoreProcs = func() { runtime.GOMAXPROCS(prev) }
		defer restoreProcs() // idempotent; covers the error returns below
		sweep.Env.GOMAXPROCS = 1
	}
	gors := []int{1, 2, 4, 8}
	perImpl := map[string]map[int]float64{}
	fmt.Fprintf(w, "micro sweep (Begin/Lock/Finish, disjoint objects, %s/point, GOMAXPROCS=%d)\n",
		micro, sweep.Env.GOMAXPROCS)
	fmt.Fprintf(w, "%-10s %-11s %14s\n", "impl", "goroutines", "ops/sec")
	for _, impl := range []struct {
		name string
		opts []lock.Option
	}{
		{"striped", nil},
		{"reference", []lock.Option{lock.WithReference()}},
	} {
		perImpl[impl.name] = map[int]float64{}
		for _, g := range gors {
			ops, secs := lockMicro(lock.NewManager(impl.opts...), g, micro)
			rate := float64(ops) / secs
			perImpl[impl.name][g] = rate
			sweep.Micro = append(sweep.Micro, LockMicroPoint{
				Impl: impl.name, Goroutines: g, Ops: ops, Seconds: secs, OpsPerSec: rate,
			})
			fmt.Fprintf(w, "%-10s %-11d %14.0f\n", impl.name, g, rate)
		}
	}
	restoreProcs() // the workload and commit sweeps run unpinned
	if ref := perImpl["reference"][8]; ref > 0 {
		sweep.SpeedupAt8 = perImpl["striped"][8] / ref
	}
	switch {
	case mode != hwmode.Hardware:
		sweep.SpeedupNote = "fidelity artifact: striping measured on a pinned uniprocessor, not judged"
	case sweep.Env.NumCPU <= 1:
		sweep.SpeedupNote = "single-CPU host: striping has nothing to parallelize, not judged"
	default:
		sweep.SpeedupAsserted = true
	}
	fmt.Fprintf(w, "striped/reference speedup at 8 goroutines: %.2fx (asserted: %v)\n\n",
		sweep.SpeedupAt8, sweep.SpeedupAsserted)
	if sweep.SpeedupAsserted && sweep.SpeedupAt8 < 1.0 {
		return sweep, fmt.Errorf("lockscale: hardware-mode striped manager slower than reference at 8 goroutines (%.2fx) on a %d-CPU host",
			sweep.SpeedupAt8, sweep.Env.NumCPU)
	}

	// Workload sweep: MPL × fleet workers under a whole-database
	// reorganization. Quick scale shrinks the database so the sweep fits a
	// CI smoke job; the reorganizer's simulated uniprocessor charge is
	// zeroed as in the preorg experiment, since it would serialize any
	// worker pool by construction.
	params.ReorgCPUPerObject = 0
	if sc.Name == "quick" {
		params.NumPartitions = 4
		params.ObjectsPerPartition = 510
	}
	fmt.Fprintf(w, "workload sweep (MPL × fleet workers, %d partitions × %d objects)\n",
		params.NumPartitions, params.ObjectsPerPartition)
	fmt.Fprintf(w, "%-5s %-8s %10s %9s %9s %10s %10s %8s %8s\n",
		"MPL", "Workers", "tput", "mean(ms)", "p99(ms)", "reorg(ms)", "acquired", "waits", "tmouts")
	for _, mpl := range sc.LockScaleMPLs {
		for _, workers := range sc.LockScaleWorkers {
			p := params
			p.MPL = mpl
			res, err := RunParallel(ParallelConfig{
				Params:  p,
				DB:      dbcfg,
				Mode:    reorg.ModeIRA,
				Workers: workers,
				Warmup:  200 * time.Millisecond,
				Drain:   200 * time.Millisecond,
				Verify:  true,
			})
			if err != nil {
				return sweep, fmt.Errorf("lockscale %s MPL=%d workers=%d: %w", mode, mpl, workers, err)
			}
			pt := LockWorkloadPoint{
				MPL:           mpl,
				Workers:       workers,
				Throughput:    res.Summary.Throughput,
				MeanMs:        ms(res.Summary.Mean),
				P99Ms:         ms(res.Summary.P99),
				ReorgMs:       ms(res.Fleet.Duration()),
				Migrated:      res.Fleet.Migrated,
				LocksAcquired: res.Fleet.Locks.Acquired,
				LockWaits:     res.Fleet.Locks.Waits,
				LockTimeouts:  res.Fleet.Locks.Timeouts,
			}
			sweep.Workload = append(sweep.Workload, pt)
			fmt.Fprintf(w, "%-5d %-8d %10.1f %9.1f %9.1f %10.0f %10d %8d %8d\n",
				pt.MPL, pt.Workers, pt.Throughput, pt.MeanMs, pt.P99Ms, pt.ReorgMs,
				pt.LocksAcquired, pt.LockWaits, pt.LockTimeouts)
		}
	}

	// Commit-throughput sweep, hardware mode only: WAL group commit vs the
	// naive per-commit-sync baseline at MPL ≥ 8. The win does not need
	// spare cores — the 2 ms simulated device write is a sleep — so this
	// holds even on a single-CPU host.
	if mode == hwmode.Hardware {
		commitDur := 400 * time.Millisecond
		if sc.Name == "full" {
			commitDur = time.Second
		}
		perSync := map[string]map[int]float64{"group": {}, "percommit": {}}
		fmt.Fprintf(w, "\ncommit sweep (disjoint-object committers, 2 ms simulated log device, %s/point)\n", commitDur)
		fmt.Fprintf(w, "%-10s %-5s %14s\n", "sync", "MPL", "commits/sec")
		for _, discipline := range []string{"group", "percommit"} {
			for _, mpl := range []int{8, 16} {
				commits, secs, err := commitThroughput(discipline == "group", mpl, commitDur)
				if err != nil {
					return sweep, fmt.Errorf("lockscale commit sweep %s MPL=%d: %w", discipline, mpl, err)
				}
				rate := float64(commits) / secs
				perSync[discipline][mpl] = rate
				sweep.Commit = append(sweep.Commit, LockCommitPoint{
					Sync: discipline, MPL: mpl, Commits: commits, Seconds: secs, CommitsPerSec: rate,
				})
				fmt.Fprintf(w, "%-10s %-5d %14.0f\n", discipline, mpl, rate)
			}
		}
		if base := perSync["percommit"][8]; base > 0 {
			sweep.GroupCommitSpeedup = perSync["group"][8] / base
		}
		fmt.Fprintf(w, "group/percommit speedup at MPL 8: %.2fx\n", sweep.GroupCommitSpeedup)
		if sweep.GroupCommitSpeedup <= 1.0 {
			return sweep, fmt.Errorf("lockscale: group commit did not beat per-commit sync at MPL 8 (%.2fx)",
				sweep.GroupCommitSpeedup)
		}
	}
	fmt.Fprintln(w)
	return sweep, nil
}

// RunLockScale runs the sweeps for every mode in the Scale, prints a
// human-readable summary to w and writes the JSON report to outPath (""
// skips the file).
func RunLockScale(w io.Writer, sc Scale, outPath string) error {
	rep := &LockScaleReport{
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		Scale:      sc.Name,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
	for _, mode := range sc.modes() {
		sweep, err := runLockScaleSweep(w, sc, mode)
		if err != nil {
			return err
		}
		rep.Sweeps = append(rep.Sweeps, sweep)
	}

	if outPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		data = append(data, '\n')
		if err := os.WriteFile(outPath, data, 0o644); err != nil {
			return fmt.Errorf("lockscale: write report: %w", err)
		}
		fmt.Fprintf(w, "\nreport written to %s\n", outPath)
	}
	return nil
}
