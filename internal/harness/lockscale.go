package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/db"
	"repro/internal/lock"
	"repro/internal/oid"
	"repro/internal/reorg"
)

// This file is the `lockscale` benchmark: the perf-trajectory harness for
// the striped lock manager. It measures two things and writes both to a
// JSON report (BENCH_lock.json by default) so successive runs can be
// compared across commits:
//
//  1. a micro sweep — raw Begin/Lock/Finish throughput of the striped and
//     the reference (single-mutex) manager at 1/2/4/8 goroutines, plus the
//     striped/reference speedup at 8 goroutines, and
//  2. a workload sweep — the full system (MPL transaction threads × fleet
//     reorganization workers) per grid cell, reporting transaction
//     throughput, mean and p99 response time, reorganization duration and
//     the lock manager's cumulative counters.

// LockMicroPoint is one cell of the micro sweep.
type LockMicroPoint struct {
	Impl       string  `json:"impl"`
	Goroutines int     `json:"goroutines"`
	Ops        uint64  `json:"ops"`
	Seconds    float64 `json:"seconds"`
	OpsPerSec  float64 `json:"ops_per_sec"`
}

// LockWorkloadPoint is one cell of the workload sweep.
type LockWorkloadPoint struct {
	MPL           int     `json:"mpl"`
	Workers       int     `json:"workers"`
	Throughput    float64 `json:"throughput_tps"`
	MeanMs        float64 `json:"mean_ms"`
	P99Ms         float64 `json:"p99_ms"`
	ReorgMs       float64 `json:"reorg_ms"`
	Migrated      int     `json:"migrated"`
	LocksAcquired uint64  `json:"locks_acquired"`
	LockWaits     uint64  `json:"lock_waits"`
	LockTimeouts  uint64  `json:"lock_timeouts"`
}

// LockScaleReport is the persisted shape of one lockscale run.
type LockScaleReport struct {
	Timestamp  string              `json:"timestamp"`
	Scale      string              `json:"scale"`
	GOMAXPROCS int                 `json:"gomaxprocs"`
	NumCPU     int                 `json:"num_cpu"`
	Micro      []LockMicroPoint    `json:"micro"`
	SpeedupAt8 float64             `json:"speedup_at_8"`
	Workload   []LockWorkloadPoint `json:"workload"`
}

// lockMicro measures aggregate Begin/Lock/Finish throughput of manager m
// with g goroutines over roughly d. Each goroutine locks a disjoint OID
// pool so every cycle is conflict-free: the only contention is on the
// manager's own structures, which is the axis striping addresses.
func lockMicro(m *lock.Manager, g int, d time.Duration) (uint64, float64) {
	var (
		ops  atomic.Uint64
		stop atomic.Bool
		wg   sync.WaitGroup
	)
	start := time.Now()
	for w := 0; w < g; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			pool := make([]oid.OID, 64)
			for i := range pool {
				pool[i] = oid.New(oid.PartitionID(w+1), oid.PageNum(i/8+1), oid.SlotNum(i%8))
			}
			txn := lock.TxnID(uint64(w)<<32 + 1)
			var n uint64
			for !stop.Load() {
				txn++
				m.Begin(txn)
				m.Lock(txn, pool[n%uint64(len(pool))], lock.Exclusive)
				m.Finish(txn)
				n++
			}
			ops.Add(n)
		}(w)
	}
	time.Sleep(d)
	stop.Store(true)
	wg.Wait()
	return ops.Load(), time.Since(start).Seconds()
}

// RunLockScale runs both sweeps, prints a human-readable summary to w and
// writes the JSON report to outPath ("" skips the file).
func RunLockScale(w io.Writer, sc Scale, outPath string) error {
	rep := &LockScaleReport{
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		Scale:      sc.Name,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}

	// Micro sweep: striped vs reference at each goroutine count.
	micro := sc.LockScaleMicroDuration
	if micro <= 0 {
		micro = 150 * time.Millisecond
	}
	gors := []int{1, 2, 4, 8}
	perImpl := map[string]map[int]float64{}
	fmt.Fprintf(w, "micro sweep (Begin/Lock/Finish, disjoint objects, %s/point)\n", micro)
	fmt.Fprintf(w, "%-10s %-11s %14s\n", "impl", "goroutines", "ops/sec")
	for _, impl := range []struct {
		name string
		opts []lock.Option
	}{
		{"striped", nil},
		{"reference", []lock.Option{lock.WithReference()}},
	} {
		perImpl[impl.name] = map[int]float64{}
		for _, g := range gors {
			ops, secs := lockMicro(lock.NewManager(impl.opts...), g, micro)
			rate := float64(ops) / secs
			perImpl[impl.name][g] = rate
			rep.Micro = append(rep.Micro, LockMicroPoint{
				Impl: impl.name, Goroutines: g, Ops: ops, Seconds: secs, OpsPerSec: rate,
			})
			fmt.Fprintf(w, "%-10s %-11d %14.0f\n", impl.name, g, rate)
		}
	}
	if ref := perImpl["reference"][8]; ref > 0 {
		rep.SpeedupAt8 = perImpl["striped"][8] / ref
	}
	fmt.Fprintf(w, "striped/reference speedup at 8 goroutines: %.2fx (GOMAXPROCS=%d)\n\n",
		rep.SpeedupAt8, rep.GOMAXPROCS)

	// Workload sweep: MPL × fleet workers under a whole-database
	// reorganization. Quick scale shrinks the database so the sweep fits a
	// CI smoke job; the reorganizer's simulated uniprocessor charge is
	// zeroed as in the preorg experiment, since it would serialize any
	// worker pool by construction.
	params := sc.Params
	params.ReorgCPUPerObject = 0
	if sc.Name == "quick" {
		params.NumPartitions = 4
		params.ObjectsPerPartition = 510
	}
	fmt.Fprintf(w, "workload sweep (MPL × fleet workers, %d partitions × %d objects)\n",
		params.NumPartitions, params.ObjectsPerPartition)
	fmt.Fprintf(w, "%-5s %-8s %10s %9s %9s %10s %10s %8s %8s\n",
		"MPL", "Workers", "tput", "mean(ms)", "p99(ms)", "reorg(ms)", "acquired", "waits", "tmouts")
	for _, mpl := range sc.LockScaleMPLs {
		for _, workers := range sc.LockScaleWorkers {
			p := params
			p.MPL = mpl
			res, err := RunParallel(ParallelConfig{
				Params:  p,
				DB:      db.DefaultConfig(),
				Mode:    reorg.ModeIRA,
				Workers: workers,
				Warmup:  200 * time.Millisecond,
				Drain:   200 * time.Millisecond,
				Verify:  true,
			})
			if err != nil {
				return fmt.Errorf("lockscale MPL=%d workers=%d: %w", mpl, workers, err)
			}
			pt := LockWorkloadPoint{
				MPL:           mpl,
				Workers:       workers,
				Throughput:    res.Summary.Throughput,
				MeanMs:        ms(res.Summary.Mean),
				P99Ms:         ms(res.Summary.P99),
				ReorgMs:       ms(res.Fleet.Duration()),
				Migrated:      res.Fleet.Migrated,
				LocksAcquired: res.Fleet.Locks.Acquired,
				LockWaits:     res.Fleet.Locks.Waits,
				LockTimeouts:  res.Fleet.Locks.Timeouts,
			}
			rep.Workload = append(rep.Workload, pt)
			fmt.Fprintf(w, "%-5d %-8d %10.1f %9.1f %9.1f %10.0f %10d %8d %8d\n",
				pt.MPL, pt.Workers, pt.Throughput, pt.MeanMs, pt.P99Ms, pt.ReorgMs,
				pt.LocksAcquired, pt.LockWaits, pt.LockTimeouts)
		}
	}

	if outPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		data = append(data, '\n')
		if err := os.WriteFile(outPath, data, 0o644); err != nil {
			return fmt.Errorf("lockscale: write report: %w", err)
		}
		fmt.Fprintf(w, "\nreport written to %s\n", outPath)
	}
	return nil
}
