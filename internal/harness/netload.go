package harness

// The netload bench is the interference monitor pushed through real
// sockets: the same windowed tput/p99 pairing as BENCH_interference
// (reorg-on vs an identically-seeded reorg-off run), but with every
// transaction submitted by a wire-protocol client against the network
// server, so protocol encode/decode, per-connection goroutines,
// admission control and deadline bookkeeping are all inside the
// measured path. Clients run as in-process goroutines by default, or —
// when Config.ClientCmd is set, as reorgbench does — as real child
// processes streaming per-transaction samples over a pipe, so the
// measured path crosses a process boundary exactly like a deployed
// client would.
//
// Each trajectory also runs an overload cell: the same workload against
// a server whose admission rate is set far below the offered load. The
// point being asserted (and recorded) is that shedding protects the
// admitted requests — the shed count is large, yet the p99 of admitted
// transactions stays bounded, because a shed transaction never holds
// locks.

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/client"
	"repro/internal/db"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/oid"
	"repro/internal/reorg"
	"repro/internal/server"
	"repro/internal/workload"
)

// NetloadConfig describes one monitored client/server run pair.
type NetloadConfig struct {
	Params workload.Params
	DB     db.Config
	Mode   reorg.Mode
	// ReorgPartition is the partition reorganized during the ON run
	// (default 1).
	ReorgPartition oid.PartitionID
	Window         time.Duration
	Warmup         time.Duration
	LeadWindows    int
	DrainWindows   int
	// MaxConns / AcceptQueue size the server for the main pair.
	MaxConns    int
	AcceptQueue int
	// OverloadAdmitRate is the admission rate (tx/s) of the overload
	// cell; the offered load is far above it, so most Begins are shed.
	OverloadAdmitRate float64
	// OverloadDuration is how long the overload cell runs.
	OverloadDuration time.Duration
	// ClientCmd, when non-empty, is the argv prefix of a real client
	// process (reorgbench passes {self, "netclient"}); the load then
	// runs in Procs child processes instead of goroutines.
	ClientCmd []string
	// Procs is how many client processes to spawn when ClientCmd is set
	// (default 2); the MPL is split across them.
	Procs int
}

// DefaultNetloadConfig sizes the netload monitor for a Scale.
func DefaultNetloadConfig(sc Scale) NetloadConfig {
	cfg := NetloadConfig{
		Params:            sc.Params,
		DB:                db.DefaultConfig(),
		Mode:              reorg.ModeIRA,
		ReorgPartition:    1,
		Window:            100 * time.Millisecond,
		Warmup:            300 * time.Millisecond,
		LeadWindows:       4,
		DrainWindows:      2,
		MaxConns:          64,
		AcceptQueue:       16,
		OverloadAdmitRate: 30,
		OverloadDuration:  1200 * time.Millisecond,
		Procs:             2,
	}
	if sc.Name == "quick" {
		cfg.Params.NumPartitions = 4
		cfg.Params.ObjectsPerPartition = 510
		cfg.Params.MPL = 10
	} else {
		cfg.LeadWindows = 8
		cfg.DrainWindows = 4
	}
	return cfg
}

// NetloadOverload is the overload cell's recorded outcome.
type NetloadOverload struct {
	AdmitRate  float64 `json:"admit_rate_tps"`
	DurationMs float64 `json:"duration_ms"`
	MPL        int     `json:"mpl"`
	Sheds      uint64  `json:"sheds"`
	Commits    int     `json:"commits"`
	Aborts     int     `json:"aborts"`
	// Latency of admitted transactions only: a shed restarts the clock,
	// so these tails measure the work the server agreed to do.
	AdmittedP50Ms float64 `json:"admitted_p50_ms"`
	AdmittedP99Ms float64 `json:"admitted_p99_ms"`
	AdmittedMaxMs float64 `json:"admitted_max_ms"`
}

// NetloadReport is one execution-mode trajectory of the bench.
type NetloadReport struct {
	Timestamp    string   `json:"timestamp"`
	Scale        string   `json:"scale"`
	System       string   `json:"system"`
	Env          BenchEnv `json:"env"`
	GOMAXPROCS   int      `json:"gomaxprocs"`
	MPL          int      `json:"mpl"`
	Partitions   int      `json:"partitions"`
	Objects      int      `json:"objects_per_partition"`
	Seed         int64    `json:"seed"`
	WindowMs     float64  `json:"window_ms"`
	WarmupMs     float64  `json:"warmup_ms"`
	LeadWindows  int      `json:"lead_windows"`
	DrainWindows int      `json:"drain_windows"`
	// Procs is the real-client-process count (0 = in-process goroutines).
	Procs int `json:"client_procs"`

	On  InterferenceSeries `json:"on"`
	Off InterferenceSeries `json:"off"`

	// ServerOn is the ON-run server's final counter snapshot.
	ServerOn server.StatsSnapshot `json:"server_on"`
	// Sheds counts RETRY_AFTER answers seen by the ON-run clients.
	Sheds uint64 `json:"sheds"`

	OffMeanTput         float64 `json:"off_mean_tput_tps"`
	OnMeanTput          float64 `json:"on_mean_tput_tps"`
	TputInterferencePct float64 `json:"tput_interference_pct"`
	OffMeanP99Ms        float64 `json:"off_mean_p99_ms"`
	OnMeanP99Ms         float64 `json:"on_mean_p99_ms"`

	Overload *NetloadOverload `json:"overload,omitempty"`
}

// NetloadBench is the persisted shape of BENCH_netload.json.
type NetloadBench struct {
	Timestamp    string           `json:"timestamp"`
	Scale        string           `json:"scale"`
	GOMAXPROCS   int              `json:"gomaxprocs"`
	NumCPU       int              `json:"num_cpu"`
	Trajectories []*NetloadReport `json:"trajectories"`
}

// netloadCatalog resolves "roots/<part>" to the partition's persistent
// roots — the walk entry points a remote client needs.
func netloadCatalog(wl *workload.Workload) func(string) []oid.OID {
	return func(name string) []oid.OID {
		var part int
		if _, err := fmt.Sscanf(name, "roots/%d", &part); err != nil {
			return nil
		}
		return wl.RootsOf(oid.PartitionID(part))
	}
}

// netWalkerParams is the walk shape shared by in-process walkers and
// netclient child processes.
type netWalkerParams struct {
	NumPartitions int
	OpsPerTrans   int
	UpdateProb    float64
	RefChurnProb  float64
}

func walkerParamsOf(p workload.Params) netWalkerParams {
	return netWalkerParams{
		NumPartitions: p.NumPartitions,
		OpsPerTrans:   p.OpsPerTrans,
		UpdateProb:    p.UpdateProb,
		RefChurnProb:  p.RefChurnProb,
	}
}

// netWalkOutcome is one transaction attempt's result.
type netWalkOutcome int

const (
	walkCommitted netWalkOutcome = iota
	walkAborted                  // server aborted (lock timeout, migration race): resubmit
	walkShed                     // admission shed: not admitted, restart the clock
	walkFatal                    // client/server gone: stop the walker
)

// runNetWalk performs one wire-protocol walk attempt, mirroring the
// in-process driver's runWalk: random descent from a persistent root,
// exclusive accesses rewriting payloads (or churning a glue edge), any
// abort resubmitted by the caller.
func runNetWalk(cl *client.Client, rng *rand.Rand, roots []oid.OID, p netWalkerParams) netWalkOutcome {
	tx, err := cl.Begin()
	if err != nil {
		switch {
		case errors.Is(err, client.ErrShed):
			var shed *client.ShedError
			if errors.As(err, &shed) && shed.After > 0 {
				time.Sleep(shed.After)
			}
			return walkShed
		case errors.Is(err, client.ErrDraining), errors.Is(err, client.ErrClosed), errors.Is(err, client.ErrRejected):
			return walkFatal
		default:
			return walkAborted // connection died; the pool redials
		}
	}
	cur := roots[rng.Intn(len(roots))]
	var visited []oid.OID
	for step := 0; step < p.OpsPerTrans; step++ {
		excl := rng.Float64() < p.UpdateProb
		obj, err := tx.Read(cur, excl)
		if err != nil {
			return walkAborted
		}
		visited = append(visited, cur)
		if excl {
			if rng.Float64() < p.RefChurnProb && len(obj.Refs) > 1 && len(visited) > 1 {
				victim := obj.Refs[len(obj.Refs)-1]
				target := visited[rng.Intn(len(visited)-1)]
				if victim != target && target != cur {
					if err := tx.DeleteRef(cur, victim); err != nil {
						return walkAborted
					}
					if err := tx.InsertRef(cur, target); err != nil {
						return walkAborted
					}
					obj.Refs[len(obj.Refs)-1] = target
				}
			} else if err := tx.Update(cur, obj.Payload); err != nil {
				return walkAborted
			}
		}
		if len(obj.Refs) == 0 {
			break
		}
		cur = obj.Refs[rng.Intn(len(obj.Refs))]
	}
	if err := tx.Commit(); err != nil {
		// ErrCommitUnknown included: without an ack the walker must
		// treat the attempt as not committed and resubmit.
		return walkAborted
	}
	return walkCommitted
}

// netLoad drives MPL walkers against addr and records commits/aborts
// into rec, until stop closes. Each walker owns a Client (its own pool,
// its own seeded rng) and is homed on a partition round-robin, exactly
// like the in-process driver's threads.
type netLoad struct {
	sheds atomic.Uint64
	wg    sync.WaitGroup

	// procs, when the load runs in child processes, so Stop can
	// terminate them.
	procs []*exec.Cmd
	pipes []io.WriteCloser
}

func startNetLoad(addr string, params workload.Params, rec *metrics.Recorder, stop <-chan struct{}, cfg *NetloadConfig) (*netLoad, error) {
	nl := &netLoad{}
	if cfg != nil && len(cfg.ClientCmd) > 0 {
		return nl, nl.startProcs(addr, params, rec, cfg)
	}
	wp := walkerParamsOf(params)
	for t := 0; t < params.MPL; t++ {
		home := oid.PartitionID(1 + t%params.NumPartitions)
		cl, err := client.Dial(client.Config{
			Addr:   addr,
			Tenant: "load",
			Seed:   params.Seed + 5000*int64(t+1),
		})
		if err != nil {
			return nil, fmt.Errorf("netload: dial walker %d: %w", t, err)
		}
		roots, err := cl.Roots(fmt.Sprintf("roots/%d", home))
		if err != nil {
			cl.Close()
			return nil, fmt.Errorf("netload: roots of partition %d: %w", home, err)
		}
		nl.wg.Add(1)
		go func(t int, cl *client.Client, roots []oid.OID) {
			defer nl.wg.Done()
			defer cl.Close()
			rng := rand.New(rand.NewSource(params.Seed + 1000*int64(t+1)))
			h := rec.Handle(t)
			stopped := func() bool {
				select {
				case <-stop:
					return true
				default:
					return false
				}
			}
			for !stopped() {
				start := time.Now()
			attempt:
				for !stopped() {
					switch runNetWalk(cl, rng, roots, wp) {
					case walkCommitted:
						h.Record(time.Since(start))
						break attempt
					case walkAborted:
						h.RecordAbort()
					case walkShed:
						// Not admitted: no work was done on the
						// transaction's behalf, so the latency clock
						// restarts — admitted-request tails must not
						// absorb admission queueing.
						nl.sheds.Add(1)
						start = time.Now()
					case walkFatal:
						return
					}
				}
			}
		}(t, cl, roots)
	}
	return nl, nil
}

// startProcs spawns cfg.Procs child client processes and parses their
// sample streams into rec.
func (nl *netLoad) startProcs(addr string, params workload.Params, rec *metrics.Recorder, cfg *NetloadConfig) error {
	procs := cfg.Procs
	if procs <= 0 {
		procs = 2
	}
	if procs > params.MPL {
		procs = params.MPL
	}
	for i := 0; i < procs; i++ {
		workers := params.MPL / procs
		if i < params.MPL%procs {
			workers++
		}
		args := append(append([]string(nil), cfg.ClientCmd[1:]...),
			"-addr", addr,
			"-tenant", "load",
			"-workers", strconv.Itoa(workers),
			"-seed", strconv.FormatInt(params.Seed+int64(i+1)*77, 10),
			"-partitions", strconv.Itoa(params.NumPartitions),
			"-ops", strconv.Itoa(params.OpsPerTrans),
			"-updateprob", strconv.FormatFloat(params.UpdateProb, 'f', -1, 64),
			"-churnprob", strconv.FormatFloat(params.RefChurnProb, 'f', -1, 64),
		)
		cmd := exec.Command(cfg.ClientCmd[0], args...)
		cmd.Stderr = os.Stderr
		stdin, err := cmd.StdinPipe()
		if err != nil {
			return err
		}
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			return err
		}
		if err := cmd.Start(); err != nil {
			return fmt.Errorf("netload: start client process: %w", err)
		}
		nl.procs = append(nl.procs, cmd)
		nl.pipes = append(nl.pipes, stdin)
		h := rec.Handle(i)
		nl.wg.Add(1)
		go func(r io.Reader, h *metrics.Handle) {
			defer nl.wg.Done()
			sc := bufio.NewScanner(r)
			for sc.Scan() {
				line := sc.Text()
				switch {
				case strings.HasPrefix(line, "C "):
					us, err := strconv.ParseInt(line[2:], 10, 64)
					if err == nil {
						h.Record(time.Duration(us) * time.Microsecond)
					}
				case line == "A":
					h.RecordAbort()
				case line == "S":
					nl.sheds.Add(1)
				}
			}
		}(stdout, h)
	}
	return nil
}

// Stop ends the load: child processes see stdin EOF and exit; goroutine
// walkers observe the caller's stop channel. Waits for all samples to
// be drained.
func (nl *netLoad) Stop() {
	for _, p := range nl.pipes {
		p.Close()
	}
	for _, c := range nl.procs {
		c.Wait()
	}
	nl.wg.Wait()
}

// RunNetClient is the body of a netclient child process: it drives
// `workers` walkers against addr and streams one line per transaction
// outcome to out — "C <latency_us>", "A" (abort resubmitted), or "S"
// (shed) — until stop closes. reorgbench's hidden netclient subcommand
// calls this with stop wired to stdin EOF.
func RunNetClient(out io.Writer, stop <-chan struct{}, addr, tenant string, workers int, seed int64, p netWalkerParamsExported) error {
	wp := netWalkerParams(p)
	var mu sync.Mutex // serializes sample lines on out
	emit := func(s string) {
		mu.Lock()
		fmt.Fprintln(out, s)
		mu.Unlock()
	}
	var wg sync.WaitGroup
	var dialErr error
	for t := 0; t < workers; t++ {
		home := oid.PartitionID(1 + t%wp.NumPartitions)
		cl, err := client.Dial(client.Config{Addr: addr, Tenant: tenant, Seed: seed + 5000*int64(t+1)})
		if err != nil {
			dialErr = err
			break
		}
		roots, err := cl.Roots(fmt.Sprintf("roots/%d", home))
		if err != nil {
			cl.Close()
			dialErr = err
			break
		}
		wg.Add(1)
		go func(t int, cl *client.Client, roots []oid.OID) {
			defer wg.Done()
			defer cl.Close()
			rng := rand.New(rand.NewSource(seed + 1000*int64(t+1)))
			stopped := func() bool {
				select {
				case <-stop:
					return true
				default:
					return false
				}
			}
			for !stopped() {
				start := time.Now()
			attempt:
				for !stopped() {
					switch runNetWalk(cl, rng, roots, wp) {
					case walkCommitted:
						emit("C " + strconv.FormatInt(time.Since(start).Microseconds(), 10))
						break attempt
					case walkAborted:
						emit("A")
					case walkShed:
						emit("S")
						start = time.Now()
					case walkFatal:
						return
					}
				}
			}
		}(t, cl, roots)
	}
	wg.Wait()
	return dialErr
}

// netWalkerParamsExported is the exported mirror of netWalkerParams for
// the netclient cmd entry point.
type netWalkerParamsExported struct {
	NumPartitions int
	OpsPerTrans   int
	UpdateProb    float64
	RefChurnProb  float64
}

// NetClientParams builds the walker parameters for RunNetClient.
func NetClientParams(partitions, ops int, updateProb, churnProb float64) netWalkerParamsExported {
	return netWalkerParamsExported{
		NumPartitions: partitions,
		OpsPerTrans:   ops,
		UpdateProb:    updateProb,
		RefChurnProb:  churnProb,
	}
}

// netloadRun is one sampled serving run.
type netloadRun struct {
	series InterferenceSeries
	server server.StatsSnapshot
	sheds  uint64
}

// runNetloadCell builds the workload, serves it, drives the network
// load, and samples windows — the socket-path twin of
// runInterferenceCell.
func runNetloadCell(cfg NetloadConfig, reorgOn bool, totalWindows int) (*netloadRun, error) {
	wl, err := workload.Build(cfg.DB, cfg.Params)
	if err != nil {
		return nil, fmt.Errorf("netload: build workload: %w", err)
	}
	defer wl.DB.Close()

	srv, addr, err := server.Start(server.Config{
		DB:          wl.DB,
		Catalog:     netloadCatalog(wl),
		MaxConns:    cfg.MaxConns,
		AcceptQueue: cfg.AcceptQueue,
		PerOpWork:   func() { wl.BurnCPU(cfg.Params.CPUPerOp) },
	}, "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("netload: start server: %w", err)
	}
	defer srv.Close()
	// With -http up, the live server counters show under the "server"
	// expvar while the cell runs.
	obs.RegisterServerStats(func() any { return srv.StatsSnapshot() })

	rec := metrics.NewRecorder()
	stop := make(chan struct{})
	load, err := startNetLoad(addr.String(), cfg.Params, rec, stop, &cfg)
	if err != nil {
		close(stop)
		return nil, err
	}
	time.Sleep(cfg.Warmup)
	base := time.Now()

	run := &netloadRun{series: InterferenceSeries{Label: "reorg-off"}}
	var reorgErr error
	if reorgOn {
		run.series.Label = "reorg-on"
		for i := 0; i < cfg.LeadWindows; i++ {
			run.series.Points = append(run.series.Points, sampleWindow(rec, cfg.Window, base, false))
		}
		r := reorg.New(wl.DB, cfg.ReorgPartition, reorg.Options{
			Mode: cfg.Mode,
			PerObjectWork: func() {
				wl.BurnCPU(cfg.Params.ReorgCPUPerObject)
			},
		})
		done := make(chan struct{})
		go func() {
			defer close(done)
			reorgErr = r.Run()
		}()
	sampling:
		for {
			run.series.Points = append(run.series.Points, sampleWindow(rec, cfg.Window, base, true))
			select {
			case <-done:
				break sampling
			default:
			}
		}
		st := r.Stats()
		run.series.ReorgMs = ms(st.Duration())
		run.series.Migrated = st.Migrated
		for i := 0; i < cfg.DrainWindows; i++ {
			run.series.Points = append(run.series.Points, sampleWindow(rec, cfg.Window, base, false))
		}
	} else {
		for i := 0; i < totalWindows; i++ {
			run.series.Points = append(run.series.Points, sampleWindow(rec, cfg.Window, base, false))
		}
	}
	close(stop)
	load.Stop()
	// The clients are gone; give the server a moment to observe the
	// closed sockets so the snapshot reflects the settled end state.
	settle := time.Now().Add(2 * time.Second)
	for {
		s := srv.StatsSnapshot()
		if (s.LiveConns == 0 && s.ActiveTxns == 0) || time.Now().After(settle) {
			run.server = s
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	run.sheds = load.sheds.Load()
	if reorgErr != nil {
		return nil, fmt.Errorf("netload: reorganization: %w", reorgErr)
	}
	return run, nil
}

// runNetloadOverload runs the overload cell: offered load far above the
// admission rate, measuring the shed count and the admitted tails.
func runNetloadOverload(cfg NetloadConfig) (*NetloadOverload, error) {
	wl, err := workload.Build(cfg.DB, cfg.Params)
	if err != nil {
		return nil, fmt.Errorf("netload overload: build workload: %w", err)
	}
	defer wl.DB.Close()

	srv, addr, err := server.Start(server.Config{
		DB:         wl.DB,
		Catalog:    netloadCatalog(wl),
		AdmitRate:  cfg.OverloadAdmitRate,
		AdmitBurst: cfg.OverloadAdmitRate / 10,
		PerOpWork:  func() { wl.BurnCPU(cfg.Params.CPUPerOp) },
	}, "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("netload overload: start server: %w", err)
	}
	defer srv.Close()

	rec := metrics.NewRecorder()
	stop := make(chan struct{})
	// The overload cell always uses in-process walkers: it measures the
	// server's shedding, not client deployment shape.
	load, err := startNetLoad(addr.String(), cfg.Params, rec, stop, nil)
	if err != nil {
		close(stop)
		return nil, err
	}
	rec.StartWindow()
	time.Sleep(cfg.OverloadDuration)
	s := rec.Stop()
	close(stop)
	load.Stop()

	return &NetloadOverload{
		AdmitRate:     cfg.OverloadAdmitRate,
		DurationMs:    ms(cfg.OverloadDuration),
		MPL:           cfg.Params.MPL,
		Sheds:         load.sheds.Load(),
		Commits:       s.Commits,
		Aborts:        s.Aborts,
		AdmittedP50Ms: ms(s.P50),
		AdmittedP99Ms: ms(s.P99),
		AdmittedMaxMs: ms(s.Max),
	}, nil
}

// RunNetload runs the paired netload cells plus the overload cell once
// per execution mode, prints a summary and writes BENCH_netload.json.
// clientCmd, when non-empty, is the argv prefix of a real client
// process (reorgbench passes its own binary plus "netclient"); nil runs
// the load in-process.
func RunNetload(w io.Writer, sc Scale, outPath string, clientCmd []string) error {
	bench := &NetloadBench{
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		Scale:      sc.Name,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
	for _, mode := range sc.modes() {
		cfg := DefaultNetloadConfig(sc)
		cfg.ClientCmd = clientCmd
		env := applyMode(mode, &cfg.Params, &cfg.DB)
		fmt.Fprintf(w, "=== %s mode (cpu_tokens=%d, group_commit=%v, reader_shards=%d)\n",
			mode, env.CPUTokens, env.GroupCommit, env.ReaderShards)
		rep, err := runNetload(w, cfg, sc.Name, env)
		if err != nil {
			return err
		}
		bench.Trajectories = append(bench.Trajectories, rep)
	}
	if outPath != "" {
		data, err := json.MarshalIndent(bench, "", "  ")
		if err != nil {
			return err
		}
		data = append(data, '\n')
		if err := os.WriteFile(outPath, data, 0o644); err != nil {
			return fmt.Errorf("netload: write report: %w", err)
		}
		fmt.Fprintf(w, "\nreport written to %s\n", outPath)
	}
	return nil
}

// runNetload monitors one trajectory.
func runNetload(w io.Writer, cfg NetloadConfig, scaleName string, env BenchEnv) (*NetloadReport, error) {
	procs := 0
	if len(cfg.ClientCmd) > 0 {
		procs = cfg.Procs
		if procs <= 0 {
			procs = 2
		}
	}
	rep := &NetloadReport{
		Timestamp:    time.Now().UTC().Format(time.RFC3339),
		Scale:        scaleName,
		System:       cfg.Mode.String(),
		Env:          env,
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		MPL:          cfg.Params.MPL,
		Partitions:   cfg.Params.NumPartitions,
		Objects:      cfg.Params.ObjectsPerPartition,
		Seed:         cfg.Params.Seed,
		WindowMs:     ms(cfg.Window),
		WarmupMs:     ms(cfg.Warmup),
		LeadWindows:  cfg.LeadWindows,
		DrainWindows: cfg.DrainWindows,
		Procs:        procs,
	}
	fmt.Fprintf(w, "netload monitor: %s over sockets, %d×%d objects, MPL %d, %s windows, %d client procs\n",
		cfg.Mode, cfg.Params.NumPartitions, cfg.Params.ObjectsPerPartition,
		cfg.Params.MPL, cfg.Window, procs)

	on, err := runNetloadCell(cfg, true, 0)
	if err != nil {
		return nil, err
	}
	rep.On = on.series
	rep.ServerOn = on.server
	rep.Sheds = on.sheds
	fmt.Fprintf(w, "reorg-on : %d windows, reorganization %.0f ms, %d objects migrated, %d conns served\n",
		len(on.series.Points), on.series.ReorgMs, on.series.Migrated, on.server.Accepted)

	off, err := runNetloadCell(cfg, false, len(on.series.Points))
	if err != nil {
		return nil, err
	}
	rep.Off = off.series

	var active []int
	for i, p := range rep.On.Points {
		if p.ReorgActive && i < len(rep.Off.Points) {
			active = append(active, i)
		}
	}
	tput := func(p InterferencePoint) float64 { return p.Throughput }
	p99 := func(p InterferencePoint) float64 { return p.P99Ms }
	rep.OnMeanTput = meanOver(rep.On.Points, active, tput)
	rep.OffMeanTput = meanOver(rep.Off.Points, active, tput)
	rep.OnMeanP99Ms = meanOver(rep.On.Points, active, p99)
	rep.OffMeanP99Ms = meanOver(rep.Off.Points, active, p99)
	if rep.OffMeanTput > 0 {
		rep.TputInterferencePct = 100 * (1 - rep.OnMeanTput/rep.OffMeanTput)
	}
	fmt.Fprintf(w, "reorg-off: %d windows\n\n", len(off.series.Points))
	fmt.Fprintf(w, "%-22s %12s %12s\n", "", "reorg-off", "reorg-on")
	fmt.Fprintf(w, "%-22s %12.1f %12.1f\n", "mean tput (tps)", rep.OffMeanTput, rep.OnMeanTput)
	fmt.Fprintf(w, "%-22s %12.1f %12.1f\n", "mean p99 (ms)", rep.OffMeanP99Ms, rep.OnMeanP99Ms)
	fmt.Fprintf(w, "throughput interference: %.1f%% over %d reorg-active windows\n",
		rep.TputInterferencePct, len(active))

	ov, err := runNetloadOverload(cfg)
	if err != nil {
		return nil, err
	}
	rep.Overload = ov
	fmt.Fprintf(w, "overload: admit %.0f tx/s vs MPL %d — %d sheds, %d commits, admitted p99 %.1f ms\n\n",
		ov.AdmitRate, ov.MPL, ov.Sheds, ov.Commits, ov.AdmittedP99Ms)
	return rep, nil
}
