package harness

import (
	"testing"

	"repro/internal/reorg"
)

// TestTortureQueryScan is the scan-under-reorg torture cell: a query
// worker traverses the migrating partitions through the
// internal/query operators across crash/recover/resume rounds. Every
// committed traversal must return exactly the fixture's payload
// multiset — no dangling refs, no duplicates beyond the two-lock
// in-flight allowance, no missed committed objects — and a final
// strict traversal must match on the fully-recovered database. One
// basic-IRA cell crashes mid-parent-rewrite; one two-lock cell crashes
// with a committed in-flight pair alive at two addresses.
func TestTortureQueryScan(t *testing.T) {
	cells := []struct {
		name string
		cfg  TortureConfig
	}{
		{"ira-parents-locked", TortureConfig{
			Seed: 5, Point: "reorg/parents-locked", Mode: reorg.ModeIRA,
			MaxHit: 60, QueryScan: true,
		}},
		{"twolock-parents-done", TortureConfig{
			Seed: 9, Point: "reorg/twolock-parents-done", Mode: reorg.ModeIRATwoLock,
			MaxHit: 60, QueryScan: true,
		}},
	}
	if !testing.Short() {
		cells = append(cells, struct {
			name string
			cfg  TortureConfig
		}{"disk-pool-evict", TortureConfig{
			Seed: 13, Point: "pool/evict", Mode: reorg.ModeIRA,
			MaxHit: 4, DiskBacked: true, QueryScan: true, Chaos: true,
		}})
	}
	for _, cell := range cells {
		cell := cell
		t.Run(cell.name, func(t *testing.T) {
			cfg := cell.cfg
			cfg.Dir = t.TempDir()
			res, err := RunTorture(cfg)
			if err != nil {
				t.Fatal(err)
			}
			commits := 0
			for _, r := range res.Rounds {
				commits += r.QueryCommits
			}
			t.Logf("%s: lives=%d rounds=%d committed traversals=%d",
				cell.name, res.Lives, len(res.Rounds), commits)
		})
	}
}
