package harness

import (
	"io"
	"testing"
	"time"

	"repro/internal/db"
	"repro/internal/hwmode"
	"repro/internal/reorg"
	"repro/internal/workload"
)

// tinyNetloadConfig sizes a netload pair small enough for go test.
func tinyNetloadConfig() NetloadConfig {
	p := workload.DefaultParams()
	p.NumPartitions = 2
	p.ObjectsPerPartition = 126
	p.MPL = 4
	p.Seed = 7
	return NetloadConfig{
		Params:            p,
		DB:                db.DefaultConfig(),
		Mode:              reorg.ModeIRA,
		ReorgPartition:    1,
		Window:            50 * time.Millisecond,
		Warmup:            100 * time.Millisecond,
		LeadWindows:       2,
		DrainWindows:      1,
		MaxConns:          16,
		AcceptQueue:       4,
		OverloadAdmitRate: 10,
		OverloadDuration:  400 * time.Millisecond,
	}
}

// TestNetloadPair runs the full ON/OFF monitor plus the overload cell
// over real sockets at tiny scale.
func TestNetloadPair(t *testing.T) {
	cfg := tinyNetloadConfig()
	env := applyMode(hwmode.Fidelity, &cfg.Params, &cfg.DB)
	rep, err := runNetload(io.Discard, cfg, "test", env)
	if err != nil {
		t.Fatalf("runNetload: %v", err)
	}
	if len(rep.On.Points) == 0 || len(rep.Off.Points) != len(rep.On.Points) {
		t.Fatalf("window pairing broken: on=%d off=%d", len(rep.On.Points), len(rep.Off.Points))
	}
	var commits int
	for _, p := range rep.On.Points {
		commits += p.Commits
	}
	if commits == 0 {
		t.Fatal("no transaction committed over the socket path")
	}
	if rep.On.Migrated == 0 {
		t.Fatal("reorg-on run migrated nothing")
	}
	if rep.ServerOn.Committed == 0 {
		t.Fatal("server counted no commits")
	}
	if rep.ServerOn.LiveConns != 0 || rep.ServerOn.ActiveTxns != 0 {
		t.Fatalf("server leaked state after load stop: %+v", rep.ServerOn)
	}
	ov := rep.Overload
	if ov == nil {
		t.Fatal("overload cell missing")
	}
	if ov.Sheds == 0 {
		t.Fatalf("overload cell shed nothing at admit rate %.0f with MPL %d", ov.AdmitRate, ov.MPL)
	}
	if ov.Commits == 0 {
		t.Fatal("overload cell admitted nothing")
	}
	// The core shedding claim: admitted requests keep a sane tail even
	// though the offered load is far above the admission rate. The
	// bound is generous — it catches admitted requests queueing behind
	// shed ones, not scheduler jitter.
	if ov.AdmittedP99Ms > ms(2*time.Second) {
		t.Fatalf("admitted p99 %.1f ms: shedding is not protecting admitted requests", ov.AdmittedP99Ms)
	}
}

// TestNetChaosCell runs the socket-chaos cell at reduced scale: conn
// drops and stalls under live reorganization, then a drain mid-fleet.
func TestNetChaosCell(t *testing.T) {
	res, err := RunNetChaos(io.Discard, NetChaosConfig{
		Seed:                11,
		Partitions:          2,
		ObjectsPerPartition: 40,
		Counters:            4,
		MPL:                 4,
		Duration:            600 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("RunNetChaos: %v", err)
	}
	if !res.DrainStoppedFleet {
		t.Fatal("drain did not stop the active fleet")
	}
	if res.Firings == 0 || res.Commits == 0 {
		t.Fatalf("cell under-exercised: %+v", res)
	}
}
