package harness

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"repro/internal/db"
	"repro/internal/hwmode"
	"repro/internal/obs"
	"repro/internal/reorg"
	"repro/internal/workload"
)

// tinyInterferenceConfig is a cell small enough for the unit-test
// budget while still exercising the full monitor path.
func tinyInterferenceConfig() InterferenceConfig {
	p := workload.DefaultParams()
	p.NumPartitions = 2
	p.ObjectsPerPartition = 64
	p.MPL = 4
	// The step-digest assertions name the physical IRA steps
	// (s1-lock-parents etc.), which logical relocation skips; pin
	// physical so they hold under the REORG_LOGICAL_OID lane.
	dcfg := db.DefaultConfig()
	dcfg.PhysicalOIDs = true
	return InterferenceConfig{
		Params:         p,
		DB:             dcfg,
		Mode:           reorg.ModeIRA,
		ReorgPartition: 1,
		Window:         25 * time.Millisecond,
		Warmup:         50 * time.Millisecond,
		LeadWindows:    2,
		DrainWindows:   1,
		Trace:          true,
		Verify:         true,
	}
}

// TestInterferencePairedReport runs the monitor on a tiny cell and checks
// the report's structural invariants: the OFF series pairs the ON series
// window for window, the lead windows are marked inactive, the
// reorganization migrated the partition, and the traced step digests
// cover the IRA steps.
func TestInterferencePairedReport(t *testing.T) {
	if testing.Short() {
		t.Skip("paired workload runs")
	}
	var buf bytes.Buffer
	cfg := tinyInterferenceConfig()
	env := applyMode(hwmode.Fidelity, &cfg.Params, &cfg.DB)
	repPtr, err := runInterference(&buf, cfg, "test", env)
	if err != nil {
		t.Fatalf("runInterference: %v\n%s", err, buf.String())
	}

	// The report must round-trip through JSON, as the bench wrapper
	// persists it.
	data, err := json.Marshal(repPtr)
	if err != nil {
		t.Fatal(err)
	}
	var rep InterferenceReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report does not round-trip: %v", err)
	}
	if rep.Env.Mode != "fidelity" || rep.Env.CPUTokens != 1 {
		t.Fatalf("trajectory env not stamped: %+v", rep.Env)
	}

	if len(rep.On.Points) == 0 || len(rep.On.Points) != len(rep.Off.Points) {
		t.Fatalf("series not paired: on=%d off=%d", len(rep.On.Points), len(rep.Off.Points))
	}
	for i := 0; i < rep.LeadWindows; i++ {
		if rep.On.Points[i].ReorgActive {
			t.Fatalf("lead window %d marked reorg-active", i)
		}
	}
	active := 0
	for i, p := range rep.On.Points {
		if p.ReorgActive {
			active++
		}
		if i > 0 && p.TMs <= rep.On.Points[i-1].TMs {
			t.Fatalf("window %d start %.1fms not after window %d", i, p.TMs, i-1)
		}
		if p.WindowMs <= 0 {
			t.Fatalf("window %d has non-positive width", i)
		}
	}
	if active == 0 {
		t.Fatal("no reorg-active windows sampled")
	}
	for _, p := range rep.Off.Points {
		if p.ReorgActive {
			t.Fatal("off series has a reorg-active window")
		}
	}
	if rep.On.Migrated != 64 {
		t.Fatalf("migrated %d of 64 objects", rep.On.Migrated)
	}
	if rep.Off.Migrated != 0 || rep.Off.ReorgMs != 0 {
		t.Fatalf("off series carries reorg stats: %+v", rep.Off)
	}
	if rep.OffMeanTput <= 0 {
		t.Fatal("off-series throughput is zero — pairing denominator broken")
	}

	steps := make(map[string]bool)
	for _, s := range rep.Steps {
		steps[s.Step] = true
		if s.Count == 0 {
			t.Fatalf("step %s digested zero spans", s.Step)
		}
	}
	for _, want := range []string{obs.StepIRALockObject, obs.StepIRALockParents, obs.StepIRADrainTRT, obs.StepIRAMove} {
		if !steps[want] {
			t.Fatalf("step digest missing %s (have %v)", want, rep.Steps)
		}
	}
	if rep.Metrics[obs.TxnCommit.String()].Count == 0 {
		t.Fatal("traced run recorded no transaction commits")
	}
}

// TestTracedRunsStayConsistent is the tracing-enabled race/linearizability
// stress: with a tracer installed process-wide, the parallel fleet and the
// crash-recovery torture harness must still pass their own oracles (graph
// signature, ERT exactness, counter prefix) — i.e. observability must be
// purely passive. Run under -race this also proves the tracer's internals
// are data-race free against every instrumented hot path at once.
func TestTracedRunsStayConsistent(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second stress")
	}
	tr := obs.NewTracer()
	restore := obs.Install(tr)
	defer restore()

	p := workload.DefaultParams()
	p.NumPartitions = 3
	p.ObjectsPerPartition = 96
	p.MPL = 6
	res, err := RunParallel(ParallelConfig{
		Params:  p,
		DB:      db.DefaultConfig(),
		Mode:    reorg.ModeIRATwoLock,
		Workers: 3,
		Warmup:  50 * time.Millisecond,
		Drain:   50 * time.Millisecond,
		Verify:  true,
	})
	if err != nil {
		t.Fatalf("traced parallel fleet: %v", err)
	}
	if res.Fleet.Migrated == 0 {
		t.Fatal("fleet migrated nothing")
	}

	if _, err := RunTorture(TortureConfig{Seed: 7, Mode: reorg.ModeIRA, CrashRounds: 2}); err != nil {
		t.Fatalf("traced torture run: %v", err)
	}

	// The tracer must have seen both the transaction side and the
	// migration side of the runs above.
	if tr.Hist(obs.TxnCommit).Count == 0 || tr.Hist(obs.LockAcquire).Count == 0 {
		t.Fatal("tracer recorded no hot-path samples")
	}
	if len(tr.Steps()) == 0 {
		t.Fatal("tracer recorded no migration steps")
	}
	if _, total := tr.Spans(); total == 0 {
		t.Fatal("tracer recorded no spans")
	}
}
