package harness

import (
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/check"
	"repro/internal/db"
	"repro/internal/metrics"
	"repro/internal/oid"
	"repro/internal/reorg"
	"repro/internal/workload"
)

// ParallelConfig describes one parallel-reorganization measurement cell:
// the reorg scheduler fans out over every data partition with a worker
// pool while the MPL transaction threads keep running.
type ParallelConfig struct {
	Params workload.Params
	DB     db.Config
	// Mode is the per-partition algorithm (IRA or two-lock IRA).
	Mode      reorg.Mode
	BatchSize int
	// Workers is the scheduler pool size.
	Workers int
	Warmup  time.Duration
	Drain   time.Duration
	Verify  bool
}

// ParallelResult is the outcome of one parallel-reorg cell.
type ParallelResult struct {
	Workers int
	// Summary covers the transactions that ran during the fleet.
	Summary metrics.Summary
	// Fleet aggregates the per-partition reorganization statistics.
	Fleet reorg.FleetStats
	// PerWorker is the final per-worker progress breakdown.
	PerWorker []metrics.WorkerProgress
	BuildTime time.Duration
}

// RunParallel executes one parallel-reorg cell: build the workload, start
// the drivers, reorganize every data partition through the scheduler, and
// measure transaction throughput over the reorganization window.
func RunParallel(cfg ParallelConfig) (*ParallelResult, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	buildStart := time.Now()
	w, err := workload.Build(cfg.DB, cfg.Params)
	if err != nil {
		return nil, fmt.Errorf("harness: build workload: %w", err)
	}
	defer w.DB.Close()
	res := &ParallelResult{Workers: cfg.Workers, BuildTime: time.Since(buildStart)}

	rec := metrics.NewRecorder()
	driver := workload.NewDriver(w, rec)
	driver.Start()
	time.Sleep(cfg.Warmup)
	rec.StartWindow()

	var parts []oid.PartitionID
	for p := 1; p <= cfg.Params.NumPartitions; p++ {
		parts = append(parts, oid.PartitionID(p))
	}
	fleet := metrics.NewFleetRecorder(cfg.Workers)
	s, err := reorg.NewScheduler(w.DB, parts, reorg.FleetOptions{
		Workers: cfg.Workers,
		Reorg: reorg.Options{
			Mode:      cfg.Mode,
			BatchSize: cfg.BatchSize,
			PerObjectWork: func() {
				w.BurnCPU(cfg.Params.ReorgCPUPerObject)
			},
		},
		Fleet: fleet,
	})
	if err != nil {
		driver.Stop()
		return nil, err
	}
	if err := s.Run(); err != nil {
		driver.Stop()
		return nil, fmt.Errorf("harness: parallel reorganization: %w", err)
	}
	res.Fleet = s.Stats()
	res.PerWorker = fleet.Snapshot()

	if cfg.Drain > 0 {
		time.Sleep(cfg.Drain)
	}
	res.Summary = rec.Stop()
	driver.Stop()

	if cfg.Verify {
		rep, err := check.Verify(w.DB, w.Roots())
		if err != nil {
			return nil, err
		}
		if err := rep.Err(); err != nil {
			return nil, fmt.Errorf("harness: post-run consistency: %w", err)
		}
	}
	return res, nil
}

// runParallelReorg is the `preorg` experiment: sweep the scheduler's
// worker count over a whole-database reorganization under load, reporting
// fleet completion time and transaction throughput next to an NR
// baseline. The reorganizer's simulated per-object CPU charge is zeroed
// here — the capacity-1 uniprocessor token that reproduces the paper's
// 1997 testbed would, by construction, serialize any worker pool; the
// experiment measures the scheduler's own scaling (lock, WAL group
// commit, and flush overlap), not the token's.
func runParallelReorg(w io.Writer, sc Scale) error {
	nr, err := cell(sc, NR, nil)
	if err != nil {
		return err
	}
	params := sc.Params
	params.ReorgCPUPerObject = 0

	fmt.Fprintf(w, "%-8s %12s %10s %10s %10s  %s\n",
		"Workers", "Reorg(ms)", "Migrated", "tput", "mean(ms)", "parts/worker")
	fmt.Fprintf(w, "%-8s %12s %10s %10.1f %10.1f\n",
		"NR", "-", "-", nr.Summary.Throughput, ms(nr.Summary.Mean))
	for _, n := range sc.WorkerCounts {
		res, err := RunParallel(ParallelConfig{
			Params:  params,
			DB:      db.DefaultConfig(),
			Mode:    reorg.ModeIRA,
			Workers: n,
			Warmup:  300 * time.Millisecond,
			Drain:   300 * time.Millisecond,
			Verify:  true,
		})
		if err != nil {
			return err
		}
		var perWorker []string
		for _, p := range res.PerWorker {
			perWorker = append(perWorker, fmt.Sprint(p.Partitions))
		}
		fmt.Fprintf(w, "%-8d %12.0f %10d %10.1f %10.1f  %s\n",
			res.Workers, ms(res.Fleet.Duration()), res.Fleet.Migrated,
			res.Summary.Throughput, ms(res.Summary.Mean),
			strings.Join(perWorker, "/"))
	}
	return nil
}
