package harness

import (
	"fmt"
	"io"
	"time"

	"repro/internal/hwmode"
	"repro/internal/workload"
)

// Scale sets the size of an experiment run. Quick preserves every shape
// the paper reports at a fraction of the runtime; Full uses the paper's
// exact workload parameters (Table 1).
type Scale struct {
	Name            string
	Params          workload.Params
	NRDuration      time.Duration
	MPLs            []int
	PartitionSizes  []int
	UpdateProbs     []float64
	GlueFactors     []float64
	PathLens        []int
	PartitionCounts []int
	// WorkerCounts is the scheduler pool-size sweep of the parallel
	// reorganization experiment (`preorg`).
	WorkerCounts []int
	// LockScaleMPLs × LockScaleWorkers is the grid of the lockscale
	// benchmark's workload sweep (see RunLockScale).
	LockScaleMPLs    []int
	LockScaleWorkers []int
	// LockScaleMicroDuration is how long each point of the lockscale
	// micro sweep (striped vs reference manager, per goroutine count)
	// measures.
	LockScaleMicroDuration time.Duration
	// Modes lists the execution modes every bench harness sweeps; empty
	// means both (fidelity first). The cmds' -mode flag narrows it.
	Modes []hwmode.Mode
}

// QuickScale is sized so the full experiment suite completes in minutes.
func QuickScale() Scale {
	p := workload.DefaultParams()
	p.ObjectsPerPartition = 1020
	return Scale{
		Name:            "quick",
		Params:          p,
		NRDuration:      2 * time.Second,
		MPLs:            []int{1, 2, 5, 10, 20, 30},
		PartitionSizes:  []int{510, 1020, 2040, 4080},
		UpdateProbs:     []float64{0, 0.25, 0.5, 0.75, 1},
		GlueFactors:     []float64{0, 0.05, 0.2, 0.5},
		PathLens:        []int{2, 8, 16},
		PartitionCounts: []int{5, 10, 20},
		WorkerCounts:    []int{1, 2, 4, 8},

		LockScaleMPLs:          []int{4, 16},
		LockScaleWorkers:       []int{1, 4},
		LockScaleMicroDuration: 150 * time.Millisecond,
	}
}

// FullScale reproduces the paper's exact parameter ranges.
func FullScale() Scale {
	return Scale{
		Name:            "full",
		Params:          workload.DefaultParams(), // Table 1 defaults
		NRDuration:      5 * time.Second,
		MPLs:            []int{1, 2, 5, 10, 15, 20, 30, 45, 60},
		PartitionSizes:  []int{1020, 2040, 4080, 6120, 8160},
		UpdateProbs:     []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 1},
		GlueFactors:     []float64{0, 0.02, 0.05, 0.1, 0.2, 0.5},
		PathLens:        []int{2, 4, 8, 16, 32},
		PartitionCounts: []int{2, 5, 10, 20},
		WorkerCounts:    []int{1, 2, 4, 8, 16},

		LockScaleMPLs:          []int{4, 16, 30},
		LockScaleWorkers:       []int{1, 2, 4, 8},
		LockScaleMicroDuration: 500 * time.Millisecond,
	}
}

// Experiment regenerates one table or figure of the paper.
type Experiment struct {
	ID    string
	Title string
	Run   func(w io.Writer, sc Scale) error
}

// All returns the experiment registry in paper order.
func All() []Experiment {
	return []Experiment{
		{"table1", "Table 1: workload parameter defaults", runTable1},
		{"fig6", "Figure 6: MPL scaleup — throughput", func(w io.Writer, sc Scale) error { return runMPL(w, sc, true, false) }},
		{"fig7", "Figure 7: MPL scaleup — average response time", func(w io.Writer, sc Scale) error { return runMPL(w, sc, false, true) }},
		{"table2", "Table 2: response time analysis at MPL 30", runTable2},
		{"fig8", "Figure 8: partition size scaleup — throughput", func(w io.Writer, sc Scale) error { return runPartitionSize(w, sc, true, false) }},
		{"fig9", "Figure 9: partition size scaleup — average response time", func(w io.Writer, sc Scale) error { return runPartitionSize(w, sc, false, true) }},
		{"fig10", "Figure 10: update probability — throughput", func(w io.Writer, sc Scale) error { return runUpdateProb(w, sc, true, false) }},
		{"fig11", "Figure 11: update probability — average response time", func(w io.Writer, sc Scale) error { return runUpdateProb(w, sc, false, true) }},
		{"mpl", "Figures 6+7 combined: MPL sweep, both metrics", func(w io.Writer, sc Scale) error { return runMPL(w, sc, true, true) }},
		{"psize", "Figures 8+9 combined: partition size sweep, both metrics", func(w io.Writer, sc Scale) error { return runPartitionSize(w, sc, true, true) }},
		{"uprob", "Figures 10+11 combined: update probability sweep, both metrics", func(w io.Writer, sc Scale) error { return runUpdateProb(w, sc, true, true) }},
		{"glue", "§5.3.4: glue factor sweep", runGlue},
		{"pathlen", "§5.3.4: transaction path length sweep", runPathLen},
		{"partitions", "§5.3.4: number of partitions sweep", runPartitions},
		{"equal-duration", "§5.3.4: PQR measured over IRA's duration", runEqualDuration},
		{"preorg", "parallel reorganization: scheduler worker-count sweep", runParallelReorg},
		{"autopilot", "autopilot: closed-loop churn→detect→repair smoke cell", runAutopilotSmoke},
	}
}

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// cell runs one (system, params) measurement.
func cell(sc Scale, sys System, mutate func(*Config)) (*Result, error) {
	cfg := DefaultConfig(sys)
	cfg.Params = sc.Params
	cfg.NRDuration = sc.NRDuration
	if mutate != nil {
		mutate(&cfg)
	}
	return Run(cfg)
}

// triple runs NR, IRA and PQR on the same configuration.
func triple(sc Scale, mutate func(*Config)) (nr, ira, pqr *Result, err error) {
	if nr, err = cell(sc, NR, mutate); err != nil {
		return
	}
	if ira, err = cell(sc, IRA, mutate); err != nil {
		return
	}
	pqr, err = cell(sc, PQR, mutate)
	return
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// sweepHeader prints the column header for a sweep table.
func sweepHeader(w io.Writer, xLabel string, tput, art bool) {
	fmt.Fprintf(w, "%-10s", xLabel)
	if tput {
		fmt.Fprintf(w, " %10s %10s %10s", "NR(tps)", "IRA(tps)", "PQR(tps)")
	}
	if art {
		fmt.Fprintf(w, " %10s %10s %10s", "NR(ms)", "IRA(ms)", "PQR(ms)")
	}
	fmt.Fprintln(w)
}

func sweepRow(w io.Writer, x string, nr, ira, pqr *Result, tput, art bool) {
	fmt.Fprintf(w, "%-10s", x)
	if tput {
		fmt.Fprintf(w, " %10.1f %10.1f %10.1f",
			nr.Summary.Throughput, ira.Summary.Throughput, pqr.Summary.Throughput)
	}
	if art {
		fmt.Fprintf(w, " %10.1f %10.1f %10.1f",
			ms(nr.Summary.Mean), ms(ira.Summary.Mean), ms(pqr.Summary.Mean))
	}
	fmt.Fprintln(w)
}

func runTable1(w io.Writer, sc Scale) error {
	p := sc.Params
	fmt.Fprintf(w, "%-16s %-42s %v\n", "Parameter", "Meaning", "Value")
	fmt.Fprintf(w, "%-16s %-42s %d\n", "NUMPARTITIONS", "partitions in the database", p.NumPartitions)
	fmt.Fprintf(w, "%-16s %-42s %d\n", "NUMOBJS", "objects per partition", p.ObjectsPerPartition)
	fmt.Fprintf(w, "%-16s %-42s %d\n", "MPL", "multi programming level", p.MPL)
	fmt.Fprintf(w, "%-16s %-42s %d\n", "OPSPERTRANS", "length of random walk per transaction", p.OpsPerTrans)
	fmt.Fprintf(w, "%-16s %-42s %.2f\n", "UPDATEPROB", "probability of exclusive access", p.UpdateProb)
	fmt.Fprintf(w, "%-16s %-42s %.2f\n", "GLUEFACTOR", "fraction of inter-partition references", p.GlueFactor)
	return nil
}

func runMPL(w io.Writer, sc Scale, tput, art bool) error {
	sweepHeader(w, "MPL", tput, art)
	for _, mpl := range sc.MPLs {
		nr, ira, pqr, err := triple(sc, func(c *Config) { c.Params.MPL = mpl })
		if err != nil {
			return err
		}
		sweepRow(w, fmt.Sprint(mpl), nr, ira, pqr, tput, art)
	}
	return nil
}

func runTable2(w io.Writer, sc Scale) error {
	// Table 2 is defined at the paper's Table 1 defaults; in particular
	// the 4080-object partition, whose reorganization is long enough for
	// the response-time tail to be unmistakable. Scales may shrink other
	// sweeps but not this.
	nr, ira, pqr, err := triple(sc, func(c *Config) {
		if c.Params.ObjectsPerPartition < 4080 {
			c.Params.ObjectsPerPartition = 4080
		}
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-6s %12s %14s %14s %16s\n",
		"", "Throughput", "AvgResp(ms)", "MaxResp(ms)", "StdDevResp(ms)")
	for _, r := range []*Result{nr, ira, pqr} {
		fmt.Fprintf(w, "%-6s %12.1f %14.1f %14.1f %16.1f\n",
			r.System, r.Summary.Throughput, ms(r.Summary.Mean), ms(r.Summary.Max), ms(r.Summary.StdDev))
	}
	return nil
}

func runPartitionSize(w io.Writer, sc Scale, tput, art bool) error {
	sweepHeader(w, "PartSize", tput, art)
	for _, n := range sc.PartitionSizes {
		nr, ira, pqr, err := triple(sc, func(c *Config) { c.Params.ObjectsPerPartition = n })
		if err != nil {
			return err
		}
		sweepRow(w, fmt.Sprint(n), nr, ira, pqr, tput, art)
	}
	return nil
}

func runUpdateProb(w io.Writer, sc Scale, tput, art bool) error {
	sweepHeader(w, "UpdProb", tput, art)
	for _, u := range sc.UpdateProbs {
		nr, ira, pqr, err := triple(sc, func(c *Config) { c.Params.UpdateProb = u })
		if err != nil {
			return err
		}
		sweepRow(w, fmt.Sprintf("%.2f", u), nr, ira, pqr, tput, art)
	}
	return nil
}

func runGlue(w io.Writer, sc Scale) error {
	sweepHeader(w, "GlueFac", true, true)
	for _, g := range sc.GlueFactors {
		nr, ira, pqr, err := triple(sc, func(c *Config) { c.Params.GlueFactor = g })
		if err != nil {
			return err
		}
		sweepRow(w, fmt.Sprintf("%.2f", g), nr, ira, pqr, true, true)
	}
	return nil
}

func runPathLen(w io.Writer, sc Scale) error {
	sweepHeader(w, "PathLen", true, true)
	for _, n := range sc.PathLens {
		nr, ira, pqr, err := triple(sc, func(c *Config) { c.Params.OpsPerTrans = n })
		if err != nil {
			return err
		}
		sweepRow(w, fmt.Sprint(n), nr, ira, pqr, true, true)
	}
	return nil
}

func runPartitions(w io.Writer, sc Scale) error {
	sweepHeader(w, "Parts", true, true)
	for _, n := range sc.PartitionCounts {
		nr, ira, pqr, err := triple(sc, func(c *Config) { c.Params.NumPartitions = n })
		if err != nil {
			return err
		}
		sweepRow(w, fmt.Sprint(n), nr, ira, pqr, true, true)
	}
	return nil
}

// runEqualDuration measures PQR over a window as long as IRA's whole
// reorganization (§5.3.4): after PQR finishes — it always finishes first
// — the workload keeps running at full speed until the window closes. The
// paper found the throughput difference "never exceeded 3%".
func runEqualDuration(w io.Writer, sc Scale) error {
	ira, err := cell(sc, IRA, nil)
	if err != nil {
		return err
	}
	window := ira.Summary.Window
	pqr, err := cell(sc, PQR, func(c *Config) { c.Window = window })
	if err != nil {
		return err
	}
	gap := 0.0
	if ira.Summary.Throughput > 0 {
		gap = 100 * (ira.Summary.Throughput - pqr.Summary.Throughput) / ira.Summary.Throughput
	}
	fmt.Fprintf(w, "window=%s (IRA reorganization duration)\n", window.Round(time.Millisecond))
	fmt.Fprintf(w, "%-6s %12s %14s\n", "", "Throughput", "AvgResp(ms)")
	fmt.Fprintf(w, "%-6s %12.1f %14.1f\n", "IRA", ira.Summary.Throughput, ms(ira.Summary.Mean))
	fmt.Fprintf(w, "%-6s %12.1f %14.1f\n", "PQR", pqr.Summary.Throughput, ms(pqr.Summary.Mean))
	fmt.Fprintf(w, "throughput gap: %.1f%%\n", gap)
	return nil
}
