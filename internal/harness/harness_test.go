package harness

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/db"
	"repro/internal/reorg"
	"repro/internal/workload"
)

// tinyScale keeps harness unit tests fast: a miniature database, zero
// simulated latencies, short windows.
func tinyScale() Scale {
	p := workload.DefaultParams()
	p.NumPartitions = 3
	p.ObjectsPerPartition = 170
	p.MPL = 4
	p.CPUPerOp = 0
	return Scale{
		Name:            "tiny",
		Params:          p,
		NRDuration:      150 * time.Millisecond,
		MPLs:            []int{1, 4},
		PartitionSizes:  []int{85, 170},
		UpdateProbs:     []float64{0, 1},
		GlueFactors:     []float64{0, 0.5},
		PathLens:        []int{2, 8},
		PartitionCounts: []int{2, 3},
		WorkerCounts:    []int{1, 2},
	}
}

func tinyConfig(s System) Config {
	cfg := DefaultConfig(s)
	cfg.Params = tinyScale().Params
	cfg.DB.FlushLatency = 0
	cfg.DB.LockTimeout = 100 * time.Millisecond
	cfg.Warmup = 30 * time.Millisecond
	cfg.NRDuration = 150 * time.Millisecond
	cfg.Verify = true
	return cfg
}

func TestRunNR(t *testing.T) {
	res, err := Run(tinyConfig(NR))
	if err != nil {
		t.Fatal(err)
	}
	if res.System != NR || res.Reorg != nil {
		t.Fatalf("result = %+v", res)
	}
	if res.Summary.Commits == 0 {
		t.Fatal("NR run committed nothing")
	}
}

func TestRunIRA(t *testing.T) {
	res, err := Run(tinyConfig(IRA))
	if err != nil {
		t.Fatal(err)
	}
	if res.Reorg == nil {
		t.Fatal("no reorg stats")
	}
	if res.Reorg.Migrated != 170 {
		t.Fatalf("Migrated = %d", res.Reorg.Migrated)
	}
	if res.Summary.Commits == 0 {
		t.Fatal("no transactions committed during IRA")
	}
}

func TestRunIRATwoLock(t *testing.T) {
	res, err := Run(tinyConfig(IRATwoLock))
	if err != nil {
		t.Fatal(err)
	}
	if res.Reorg == nil || res.Reorg.Migrated != 170 {
		t.Fatalf("reorg stats = %+v", res.Reorg)
	}
}

func TestRunPQR(t *testing.T) {
	res, err := Run(tinyConfig(PQR))
	if err != nil {
		t.Fatal(err)
	}
	if res.Reorg == nil || res.Reorg.Migrated != 170 {
		t.Fatalf("reorg stats = %+v", res.Reorg)
	}
}

func TestRunWithFixedWindow(t *testing.T) {
	cfg := tinyConfig(PQR)
	cfg.Window = 400 * time.Millisecond
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Window < cfg.Window {
		t.Fatalf("window = %v, want >= %v", res.Summary.Window, cfg.Window)
	}
}

func TestExperimentRegistry(t *testing.T) {
	all := All()
	if len(all) != 17 {
		t.Fatalf("registry has %d experiments", len(all))
	}
	ids := map[string]bool{}
	for _, e := range all {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Fatalf("malformed experiment %+v", e)
		}
		if ids[e.ID] {
			t.Fatalf("duplicate id %s", e.ID)
		}
		ids[e.ID] = true
	}
	for _, want := range []string{"table1", "fig6", "fig7", "table2", "fig8", "fig9", "fig10", "fig11"} {
		if _, ok := ByID(want); !ok {
			t.Fatalf("experiment %s missing", want)
		}
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("phantom experiment found")
	}
}

func TestTable1Output(t *testing.T) {
	var buf bytes.Buffer
	e, _ := ByID("table1")
	if err := e.Run(&buf, tinyScale()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, param := range []string{"NUMPARTITIONS", "NUMOBJS", "MPL", "OPSPERTRANS", "UPDATEPROB", "GLUEFACTOR"} {
		if !strings.Contains(out, param) {
			t.Fatalf("table1 output missing %s:\n%s", param, out)
		}
	}
}

// TestFig6TinySweep exercises the full sweep machinery end to end on the
// miniature scale (this is a functional test; the benchmark harness runs
// the meaningful scales).
func TestFig6TinySweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep test skipped in -short mode")
	}
	sc := tinyScale()
	var buf bytes.Buffer
	e, _ := ByID("fig6")
	if err := e.Run(&buf, sc); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1+len(sc.MPLs) {
		t.Fatalf("fig6 produced %d lines:\n%s", len(lines), buf.String())
	}
	if !strings.Contains(lines[0], "NR(tps)") {
		t.Fatalf("header = %q", lines[0])
	}
}

func TestRunParallel(t *testing.T) {
	dbCfg := db.DefaultConfig()
	dbCfg.FlushLatency = 0
	dbCfg.LockTimeout = 100 * time.Millisecond
	res, err := RunParallel(ParallelConfig{
		Params:  tinyScale().Params,
		DB:      dbCfg,
		Mode:    reorg.ModeIRA,
		Workers: 2,
		Warmup:  30 * time.Millisecond,
		Verify:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Workers != 2 {
		t.Fatalf("Workers = %d", res.Workers)
	}
	if res.Fleet.Done != 3 || res.Fleet.Migrated != 3*170 {
		t.Fatalf("fleet stats: %+v", res.Fleet)
	}
	if len(res.PerWorker) != 2 {
		t.Fatalf("PerWorker has %d entries", len(res.PerWorker))
	}
	parts := 0
	for _, p := range res.PerWorker {
		parts += p.Partitions
	}
	if parts != 3 {
		t.Fatalf("workers completed %d partitions, want 3", parts)
	}
	if res.Summary.Commits == 0 {
		t.Fatal("no transactions committed during the fleet")
	}
}

// TestPreorgTinySweep runs the preorg experiment end to end on the
// miniature scale.
func TestPreorgTinySweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep test skipped in -short mode")
	}
	sc := tinyScale()
	var buf bytes.Buffer
	e, _ := ByID("preorg")
	if err := e.Run(&buf, sc); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	// Header + NR baseline + one row per worker count.
	if len(lines) != 2+len(sc.WorkerCounts) {
		t.Fatalf("preorg produced %d lines:\n%s", len(lines), buf.String())
	}
	if !strings.Contains(lines[0], "Workers") || !strings.Contains(lines[1], "NR") {
		t.Fatalf("unexpected output:\n%s", buf.String())
	}
}

func TestSystemString(t *testing.T) {
	for s, want := range map[System]string{NR: "NR", IRA: "IRA", IRATwoLock: "IRA-2L", PQR: "PQR"} {
		if s.String() != want {
			t.Errorf("System(%d) = %q", int(s), s.String())
		}
	}
}
