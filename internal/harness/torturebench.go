package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// TortureReport is the JSON artifact RunTortureBench writes: enough to
// assert a clean sweep in CI and to replay any failure by hand.
type TortureReport struct {
	Seeds    int      `json:"seeds"`
	SeedBase int64    `json:"seed_base"`
	Points   []string `json:"points"`
	Failures []string `json:"failures"`
}

// RunTortureBench runs the torture sweep at benchmark scale and writes
// a JSON report to out. It returns an error when any seed fails, after
// the report is written — CI can upload the artifact either way.
func RunTortureBench(w io.Writer, spec TortureSpec, out string) error {
	points := spec.Points
	if len(points) == 0 {
		points = DefaultTorturePoints()
	}
	failures, err := RunTortureSweep(w, spec)
	if err != nil {
		return err
	}
	rep := TortureReport{Seeds: spec.Seeds, SeedBase: spec.SeedBase}
	for _, p := range points {
		rep.Points = append(rep.Points, p.Point)
	}
	for _, f := range failures {
		rep.Failures = append(rep.Failures, f.ReplayLine())
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "torture: %d seeds, %d failures -> %s\n", spec.Seeds, len(rep.Failures), out)
	if len(failures) > 0 {
		return fmt.Errorf("torture: %d of %d seeds failed", len(failures), spec.Seeds)
	}
	return nil
}
