package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"time"

	"repro/internal/autopilot"
	"repro/internal/check"
	"repro/internal/db"
	"repro/internal/hwmode"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/oid"
	"repro/internal/reorg"
	"repro/internal/workload"
)

// This file is the autopilot benchmark: the closed-loop experiment the
// paper's operator-driven evaluation stops short of. A churn pass
// scatters one partition's objects (destroying the clustering the
// builder laid down), the workload runs, and the autopilot — statistics
// collector, selection policy, AIMD pacer — must notice the declustered
// partition, reorganize it under an interference budget, and restore the
// clustering. The report records both halves of the claim: the
// declustering score's recovery curve and the foreground p99 relative to
// the in-run baseline. Written as BENCH_autopilot.json
// (reorgbench -bench autopilot) so successive commits can be compared.

// AutopilotPoint is one sampling window of the monitored run, extended
// with the pacer's state at the window boundary.
type AutopilotPoint struct {
	InterferencePoint
	// RateTokensPerSec is the admission rate after this window's AIMD
	// decision; Event is the decision (probe/hold/backoff/fixed).
	RateTokensPerSec float64 `json:"rate_tokens_per_sec"`
	Event            string  `json:"event"`
}

// AutopilotReport is the persisted shape of one autopilot trajectory
// (one hardware/fidelity mode); AutopilotBench is the on-disk wrapper
// that carries one trajectory per mode.
type AutopilotReport struct {
	Timestamp    string   `json:"timestamp"`
	Scale        string   `json:"scale"`
	System       string   `json:"system"`
	Env          BenchEnv `json:"env"`
	GOMAXPROCS   int      `json:"gomaxprocs"`
	MPL          int      `json:"mpl"`
	Partitions   int     `json:"partitions"`
	Objects      int     `json:"objects_per_partition"`
	Seed         int64   `json:"seed"`
	WindowMs     float64 `json:"window_ms"`
	WarmupMs     float64 `json:"warmup_ms"`
	LeadWindows  int     `json:"lead_windows"`
	DrainWindows int     `json:"drain_windows"`
	Policy       string  `json:"policy"`
	BudgetPct    float64 `json:"budget_pct"`

	// Clustering-recovery curve: the churned partition's exact
	// declustering score fresh (just built), after the churn pass, and
	// after the autopilot pass. RecoveryPct is how much of the
	// churn-induced decay the pass undid (100 = fully back to fresh);
	// RecoveredWithin10Pct is the acceptance criterion — recovered score
	// within 10% of the fresh value, measured against the decay span.
	ChurnedPartition     int     `json:"churned_partition"`
	FreshScore           float64 `json:"fresh_score"`
	FreshLocality        float64 `json:"fresh_locality"`
	ChurnedScore         float64 `json:"churned_score"`
	ChurnedLocality      float64 `json:"churned_locality"`
	RecoveredScore       float64 `json:"recovered_score"`
	RecoveredLocality    float64 `json:"recovered_locality"`
	RecoveryPct          float64 `json:"recovery_pct"`
	RecoveredWithin10Pct bool    `json:"recovered_within_10pct"`

	// Interference-budget adherence. The criterion compares phase-level
	// p99s: all lead-window response samples merged into one histogram
	// (the baseline) against all reorg-active samples merged into another.
	// A single 100 ms window's p99 is the worst of ~100 commits, so any
	// one deadlock-timeout victim — IRA's inherent, paper-sanctioned
	// conflict resolution — saturates it; the phase-level tail is what the
	// budget can meaningfully govern. The per-window p99s still drive the
	// AIMD loop (that is the feedback signal) and are in Points.
	BaselineP99Ms   float64 `json:"baseline_p99_ms"`
	ActiveP99Ms     float64 `json:"active_p99_ms"`
	P99InflationPct float64 `json:"p99_inflation_pct"`
	WithinBudget    bool    `json:"within_budget"`

	Migrated int                        `json:"migrated"`
	PassMs   float64                    `json:"pass_ms"`
	Selected []oid.PartitionID          `json:"selected"`
	Scores   []autopilot.PartitionScore `json:"scores"`
	Pacer    autopilot.PacerSnapshot    `json:"pacer"`
	Points   []AutopilotPoint           `json:"points"`

	// CountersExact records that the incremental statistics counters
	// matched an exact scan after the run (enforced; a drift fails the
	// benchmark).
	CountersExact bool `json:"counters_exact"`
}

// AutopilotConfig describes one autopilot benchmark run.
type AutopilotConfig struct {
	Params workload.Params
	DB     db.Config
	// Policy selects the partition-selection policy (default greedy).
	Policy autopilot.PolicyKind
	// Pacer configures the AIMD controller; its Budget is the
	// interference criterion the report is judged against.
	Pacer autopilot.PacerConfig
	// ChurnedPartition is the partition the churn pass scatters
	// (default 1).
	ChurnedPartition oid.PartitionID
	// Window, Warmup, LeadWindows, DrainWindows mirror the interference
	// monitor's sampling shape.
	Window       time.Duration
	Warmup       time.Duration
	LeadWindows  int
	DrainWindows int
	// Verify runs the consistency checker after the run.
	Verify bool
}

// DefaultAutopilotConfig sizes the benchmark for a Scale.
func DefaultAutopilotConfig(sc Scale) AutopilotConfig {
	cfg := AutopilotConfig{
		Params:           sc.Params,
		DB:               db.DefaultConfig(),
		Policy:           autopilot.PolicyGreedy,
		Pacer:            autopilot.DefaultPacerConfig(),
		ChurnedPartition: 1,
		Window:           100 * time.Millisecond,
		Warmup:           300 * time.Millisecond,
		LeadWindows:      5,
		DrainWindows:     3,
		Verify:           true,
	}
	if sc.Name == "quick" {
		cfg.Params.NumPartitions = 4
		cfg.Params.ObjectsPerPartition = 510
		cfg.Params.MPL = 10
	} else {
		cfg.LeadWindows = 10
		cfg.DrainWindows = 5
	}
	return cfg
}

// shuffleChurn scatters part's objects with a quiescent offline pass: a
// same-partition, non-dense (first-fit) plan under a shuffled migration
// order relocates every object into whatever hole opens first, which
// decorrelates page placement from the reference graph — the decayed
// layout a long-lived update workload produces, compressed into one
// pass. Must run with no concurrent transactions.
func shuffleChurn(d *db.Database, part oid.PartitionID, seed int64) (int, error) {
	rng := rand.New(rand.NewSource(seed))
	r := reorg.New(d, part, reorg.Options{
		Mode: reorg.ModeOffline,
		Plan: &reorg.Plan{Target: func(oid.OID) oid.PartitionID { return part }},
		MigrationOrder: func(objects []oid.OID) []oid.OID {
			rng.Shuffle(len(objects), func(i, j int) {
				objects[i], objects[j] = objects[j], objects[i]
			})
			return objects
		},
	})
	if err := r.Run(); err != nil {
		return 0, err
	}
	return r.Stats().Migrated, nil
}

// runAutopilotSmoke is the experiment-registry cell: a deliberately tiny
// closed-loop run (about two seconds at quick scale) that exercises the
// whole churn→detect→repair path so `reorgbench -exp all -quick` — and
// CI — cover the autopilot without the full benchmark's runtime. It
// writes no report file; the full run is `reorgbench -bench autopilot`.
func runAutopilotSmoke(w io.Writer, sc Scale) error {
	cfg := DefaultAutopilotConfig(sc)
	if sc.Name == "quick" {
		// Keep the partition count — a narrower database concentrates
		// every walker on the partition under reorganization and the cell
		// degenerates into a deadlock storm — and shrink the objects and
		// MPL instead.
		cfg.Params.ObjectsPerPartition = 255
		cfg.Params.MPL = 4
		cfg.LeadWindows = 3
		cfg.DrainWindows = 2
		// The smoke cell trades budget fidelity for runtime: a faster
		// floor finishes the tiny pass in a couple of seconds.
		cfg.Pacer.InitialRate = 400
		cfg.Pacer.MinRate = 200
	}
	// The smoke cell runs a single trajectory in whatever mode the
	// environment selects, so the REORG_MODE=hardware CI lane exercises
	// the bypassed-token path here too.
	env := applyMode(hwmode.Env(), &cfg.Params, &cfg.DB)
	_, err := runAutopilot(w, cfg, sc.Name, env)
	return err
}

// AutopilotBench is the persisted BENCH_autopilot.json shape: one
// closed-loop trajectory per execution mode over the same cell.
type AutopilotBench struct {
	Timestamp    string             `json:"timestamp"`
	Scale        string             `json:"scale"`
	GOMAXPROCS   int                `json:"gomaxprocs"`
	NumCPU       int                `json:"num_cpu"`
	Trajectories []*AutopilotReport `json:"trajectories"`
}

// RunAutopilot runs the autopilot benchmark at the Scale's default
// configuration once per requested execution mode, prints a summary to
// w and writes the JSON report to outPath ("" skips the file).
func RunAutopilot(w io.Writer, sc Scale, outPath string) error {
	bench := &AutopilotBench{
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		Scale:      sc.Name,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
	for _, mode := range sc.modes() {
		cfg := DefaultAutopilotConfig(sc)
		env := applyMode(mode, &cfg.Params, &cfg.DB)
		fmt.Fprintf(w, "=== autopilot trajectory: %s mode (cpu tokens %d, group commit %v) ===\n",
			env.Mode, env.CPUTokens, env.GroupCommit)
		rep, err := runAutopilot(w, cfg, sc.Name, env)
		if err != nil {
			return err
		}
		bench.Trajectories = append(bench.Trajectories, rep)
	}
	if outPath != "" {
		data, err := json.MarshalIndent(bench, "", "  ")
		if err != nil {
			return err
		}
		data = append(data, '\n')
		if err := os.WriteFile(outPath, data, 0o644); err != nil {
			return fmt.Errorf("autopilot: write report: %w", err)
		}
		fmt.Fprintf(w, "report written to %s\n", outPath)
	}
	return nil
}

// runAutopilot runs one trajectory with an explicit configuration, so
// tests can run a small cell; env is recorded in the report verbatim
// (applyMode has already folded it into cfg).
func runAutopilot(w io.Writer, cfg AutopilotConfig, scaleName string, env BenchEnv) (*AutopilotReport, error) {
	if cfg.ChurnedPartition == 0 {
		cfg.ChurnedPartition = 1
	}
	wl, err := workload.Build(cfg.DB, cfg.Params)
	if err != nil {
		return nil, fmt.Errorf("autopilot: build workload: %w", err)
	}
	defer wl.DB.Close()

	// Manage the data partitions only; the root table in partition 0 has
	// no clustering to maintain.
	parts := make([]oid.PartitionID, 0, cfg.Params.NumPartitions)
	for i := 1; i <= cfg.Params.NumPartitions; i++ {
		parts = append(parts, oid.PartitionID(i))
	}
	ap, err := autopilot.New(wl.DB, autopilot.Config{
		Partitions: parts,
		Policy:     cfg.Policy,
		MaxPerPass: 1,
		Seed:       uint64(cfg.Params.Seed),
		Pacer:      cfg.Pacer,
		Reorg: reorg.Options{
			PerObjectWork: func() { wl.BurnCPU(cfg.Params.ReorgCPUPerObject) },
		},
	})
	if err != nil {
		return nil, err
	}
	restore := autopilot.Install(ap)
	defer restore()

	rep := &AutopilotReport{
		Timestamp:        time.Now().UTC().Format(time.RFC3339),
		Scale:            scaleName,
		System:           "autopilot/" + cfg.Policy.String(),
		Env:              env,
		GOMAXPROCS:       runtime.GOMAXPROCS(0),
		MPL:              cfg.Params.MPL,
		Partitions:       cfg.Params.NumPartitions,
		Objects:          cfg.Params.ObjectsPerPartition,
		Seed:             cfg.Params.Seed,
		WindowMs:         ms(cfg.Window),
		WarmupMs:         ms(cfg.Warmup),
		LeadWindows:      cfg.LeadWindows,
		DrainWindows:     cfg.DrainWindows,
		Policy:           cfg.Policy.String(),
		BudgetPct:        100 * cfg.Pacer.Budget,
		ChurnedPartition: int(cfg.ChurnedPartition),
	}

	// Fresh score, then scatter the partition and score it again — the
	// span between the two is the decay the autopilot must repair.
	freshScore, freshEx, err := ap.ExactScore(cfg.ChurnedPartition)
	if err != nil {
		return nil, err
	}
	rep.FreshScore = freshScore
	rep.FreshLocality = freshEx.Locality
	if _, err := shuffleChurn(wl.DB, cfg.ChurnedPartition, cfg.Params.Seed+7); err != nil {
		return nil, fmt.Errorf("autopilot: churn pass: %w", err)
	}
	churnedScore, churnedEx, err := ap.ExactScore(cfg.ChurnedPartition)
	if err != nil {
		return nil, err
	}
	rep.ChurnedScore = churnedScore
	rep.ChurnedLocality = churnedEx.Locality

	fmt.Fprintf(w, "autopilot benchmark: %s policy, %d×%d objects, MPL %d, budget %.0f%% p99\n",
		cfg.Policy, cfg.Params.NumPartitions, cfg.Params.ObjectsPerPartition,
		cfg.Params.MPL, 100*cfg.Pacer.Budget)
	fmt.Fprintf(w, "partition %d declustering score: fresh %.3f → churned %.3f (locality %.3f → %.3f)\n",
		cfg.ChurnedPartition, freshScore, churnedScore, freshEx.Locality, churnedEx.Locality)

	rec := metrics.NewRecorder()
	driver := workload.NewDriver(wl, rec)
	driver.Start()
	time.Sleep(cfg.Warmup)
	base := time.Now()

	// The AIMD loop is fed a rolling phase-level p99 — the last
	// rollingWindows window histograms merged — rather than the single
	// window's p99: one window's p99 is the worst of ~100 commits, so it
	// swings between "clean" and "deadlock spike" and the controller
	// would chase noise. The rolling tail is the same statistic the
	// budget criterion uses, so the controller converges on the rate
	// that actually meets it. The ring is pre-seeded by the lead windows.
	const rollingWindows = 10
	ring := make([]obs.HistSnapshot, 0, rollingWindows)
	pushRolling := func(h obs.HistSnapshot) obs.HistSnapshot {
		ring = append(ring, h)
		if len(ring) > rollingWindows {
			ring = ring[1:]
		}
		var roll obs.HistSnapshot
		for _, wh := range ring {
			roll.Merge(wh)
		}
		return roll
	}

	// Lead windows establish the in-run baseline the budget is measured
	// against: their samples merge into one phase-level histogram.
	var baseHist obs.HistSnapshot
	for i := 0; i < cfg.LeadWindows; i++ {
		pt, sum := sampleWindowSummary(rec, cfg.Window, base, false)
		rep.Points = append(rep.Points, AutopilotPoint{InterferencePoint: pt, RateTokensPerSec: ap.Pacer().Rate(), Event: "lead"})
		baseHist.Merge(sum.Hist)
		pushRolling(sum.Hist)
	}
	baselineP99 := baseHist.Quantile(0.99)
	ap.SetBaseline(baselineP99)
	rep.BaselineP99Ms = ms(baselineP99)

	type passOutcome struct {
		rep *autopilot.PassReport
		err error
	}
	passCh := make(chan passOutcome, 1)
	go func() {
		pr, perr := ap.RunPass()
		passCh <- passOutcome{pr, perr}
	}()
	var pass passOutcome
	var activeHist obs.HistSnapshot
sampling:
	for {
		pt, sum := sampleWindowSummary(rec, cfg.Window, base, true)
		activeHist.Merge(sum.Hist)
		ev := ap.Pacer().Observe(pushRolling(sum.Hist).Quantile(0.99))
		rep.Points = append(rep.Points, AutopilotPoint{InterferencePoint: pt, RateTokensPerSec: ap.Pacer().Rate(), Event: ev.String()})
		select {
		case pass = <-passCh:
			break sampling
		default:
		}
	}
	for i := 0; i < cfg.DrainWindows; i++ {
		pt := sampleWindow(rec, cfg.Window, base, false)
		rep.Points = append(rep.Points, AutopilotPoint{InterferencePoint: pt, RateTokensPerSec: ap.Pacer().Rate(), Event: "drain"})
	}
	driver.Stop()
	if pass.err != nil {
		return nil, fmt.Errorf("autopilot: pass: %w", pass.err)
	}
	rep.Migrated = pass.rep.Migrated
	rep.PassMs = ms(pass.rep.Duration)
	rep.Selected = pass.rep.Selected
	rep.Scores = pass.rep.Scores
	rep.Pacer = ap.Pacer().Snapshot()

	if cfg.Verify {
		crep, err := check.Verify(wl.DB, wl.Roots())
		if err != nil {
			return nil, err
		}
		if err := crep.Err(); err != nil {
			return nil, fmt.Errorf("autopilot: post-run consistency: %w", err)
		}
	}
	// The database is quiescent now; the incremental counters must agree
	// with an exact scan across every managed partition.
	if err := ap.VerifyCounters(); err != nil {
		return nil, err
	}
	rep.CountersExact = true

	recoveredScore, recoveredEx, err := ap.ExactScore(cfg.ChurnedPartition)
	if err != nil {
		return nil, err
	}
	rep.RecoveredScore = recoveredScore
	rep.RecoveredLocality = recoveredEx.Locality
	decay := churnedScore - freshScore
	if decay > 0 {
		rep.RecoveryPct = 100 * (churnedScore - recoveredScore) / decay
		rep.RecoveredWithin10Pct = recoveredScore <= freshScore+0.1*decay
	} else {
		// The churn pass failed to decluster (degenerate tiny cells):
		// recovery is vacuously complete.
		rep.RecoveryPct = 100
		rep.RecoveredWithin10Pct = true
	}

	rep.ActiveP99Ms = ms(activeHist.Quantile(0.99))
	if rep.BaselineP99Ms > 0 {
		rep.P99InflationPct = 100 * (rep.ActiveP99Ms/rep.BaselineP99Ms - 1)
	}
	rep.WithinBudget = rep.P99InflationPct <= 100*cfg.Pacer.Budget

	fmt.Fprintf(w, "pass: selected %v, migrated %d objects in %.0f ms\n",
		rep.Selected, rep.Migrated, rep.PassMs)
	fmt.Fprintf(w, "recovered score %.3f (locality %.3f): %.0f%% of decay repaired, within 10%% of fresh: %v\n",
		rep.RecoveredScore, rep.RecoveredLocality, rep.RecoveryPct, rep.RecoveredWithin10Pct)
	fmt.Fprintf(w, "p99: baseline %.2f ms, reorg-active %.2f ms, inflation %.1f%% (budget %.0f%%, within: %v)\n",
		rep.BaselineP99Ms, rep.ActiveP99Ms, rep.P99InflationPct, rep.BudgetPct, rep.WithinBudget)
	fmt.Fprintf(w, "pacer: %.0f → %.0f tokens/s, %d backoffs, %d probes over %d windows\n",
		cfg.Pacer.InitialRate, rep.Pacer.RateTokensPerSec, rep.Pacer.Backoffs, rep.Pacer.Probes, rep.Pacer.Observed)
	return rep, nil
}
