// Package harness runs the paper's experiments (§5): it builds the §5.2
// workload, drives MPL transaction threads, runs one of the three systems
// under comparison — NR (no reorganization), IRA, or PQR — and measures
// throughput and response times during the reorganization window, exactly
// as the paper does ("transactions were run until the reorganization
// operation completed... measuring the throughput and the response time
// of the transactions while reorganization is being performed").
package harness

import (
	"fmt"
	"time"

	"repro/internal/check"
	"repro/internal/db"
	"repro/internal/metrics"
	"repro/internal/oid"
	"repro/internal/reorg"
	"repro/internal/workload"
)

// System identifies a configuration under test.
type System int

// Systems compared in the evaluation.
const (
	// NR runs no reorganization utility.
	NR System = iota
	// IRA runs the Incremental Reorganization Algorithm.
	IRA
	// IRATwoLock runs IRA with the ≤2-locks extension (§4.2).
	IRATwoLock
	// PQR runs the partition-quiesce baseline.
	PQR
)

func (s System) String() string {
	switch s {
	case NR:
		return "NR"
	case IRA:
		return "IRA"
	case IRATwoLock:
		return "IRA-2L"
	case PQR:
		return "PQR"
	}
	return fmt.Sprintf("System(%d)", int(s))
}

// Config describes one measurement cell.
type Config struct {
	Params workload.Params
	DB     db.Config
	System System
	// ReorgPartition is the partition reorganized (default 1).
	ReorgPartition oid.PartitionID
	// BatchSize groups IRA object migrations per transaction (§4.3).
	BatchSize int
	// Warmup runs the workload before the measurement window opens.
	Warmup time.Duration
	// NRDuration is the measurement window when no reorganization runs.
	NRDuration time.Duration
	// Window, if nonzero, extends the measurement past the end of the
	// reorganization to a fixed total width (the §5.3.4 "measure PQR
	// over IRA's duration" experiment).
	Window time.Duration
	// Drain keeps the recorder open after the phase ends so transactions
	// that were stalled behind the reorganizer (PQR's quiesce locks in
	// particular) commit inside the window and contribute their — very
	// long — response times, as in the paper's Table 2.
	Drain time.Duration
	// Verify runs the consistency checker after the workload stops.
	Verify bool
}

// DefaultConfig returns a paper-defaults cell for the given system.
func DefaultConfig(s System) Config {
	return Config{
		Params:         workload.DefaultParams(),
		DB:             db.DefaultConfig(),
		System:         s,
		ReorgPartition: 1,
		Warmup:         300 * time.Millisecond,
		NRDuration:     3 * time.Second,
		Drain:          300 * time.Millisecond,
	}
}

// Result is the outcome of one cell.
type Result struct {
	System  System
	Summary metrics.Summary
	// Reorg holds the reorganizer's statistics (nil for NR).
	Reorg *reorg.Stats
	// BuildTime is the time spent constructing the database.
	BuildTime time.Duration
}

// Run executes one measurement cell.
func Run(cfg Config) (*Result, error) {
	if cfg.ReorgPartition == 0 {
		cfg.ReorgPartition = 1
	}
	if cfg.NRDuration == 0 {
		cfg.NRDuration = 3 * time.Second
	}
	buildStart := time.Now()
	w, err := workload.Build(cfg.DB, cfg.Params)
	if err != nil {
		return nil, fmt.Errorf("harness: build workload: %w", err)
	}
	defer w.DB.Close()
	res := &Result{System: cfg.System, BuildTime: time.Since(buildStart)}

	rec := metrics.NewRecorder()
	driver := workload.NewDriver(w, rec)
	driver.Start()
	time.Sleep(cfg.Warmup)
	rec.StartWindow()
	windowStart := time.Now()

	switch cfg.System {
	case NR:
		time.Sleep(cfg.NRDuration)
	default:
		mode := reorg.ModeIRA
		switch cfg.System {
		case IRATwoLock:
			mode = reorg.ModeIRATwoLock
		case PQR:
			mode = reorg.ModePQR
		}
		r := reorg.New(w.DB, cfg.ReorgPartition, reorg.Options{
			Mode:      mode,
			BatchSize: cfg.BatchSize,
			PerObjectWork: func() {
				w.BurnCPU(cfg.Params.ReorgCPUPerObject)
			},
		})
		if err := r.Run(); err != nil {
			driver.Stop()
			return nil, fmt.Errorf("harness: %v reorganization: %w", cfg.System, err)
		}
		st := r.Stats()
		res.Reorg = &st
		// Optionally keep measuring to a fixed window width.
		if cfg.Window > 0 {
			if rest := cfg.Window - time.Since(windowStart); rest > 0 {
				time.Sleep(rest)
			}
		}
	}

	if cfg.Drain > 0 {
		time.Sleep(cfg.Drain)
	}
	res.Summary = rec.Stop()
	driver.Stop()

	if cfg.Verify {
		rep, err := check.Verify(w.DB, w.Roots())
		if err != nil {
			return nil, err
		}
		if err := rep.Err(); err != nil {
			return nil, fmt.Errorf("harness: post-run consistency: %w", err)
		}
	}
	return res, nil
}
