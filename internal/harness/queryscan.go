package harness

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"time"

	"repro/internal/autopilot"
	"repro/internal/db"
	"repro/internal/hwmode"
	"repro/internal/metrics"
	"repro/internal/oid"
	"repro/internal/query"
	"repro/internal/reorg"
	"repro/internal/workload"
)

// This file is the `queryscan` benchmark: the clustering claim measured
// through a real consumer. The bufferpool bench counts page faults of a
// hand-rolled chain walk; here the consumer is the volcano operator
// pipeline (FollowRefs over the workload's cluster trees), so the
// benchmark reports what an analytic client actually feels: cold
// traversal latency and fault rate on a declustered store, the same
// store after an autopilot-ordered clustering pass, and — second cell —
// how much analytic scans and OLTP traffic interfere while a reorg
// fleet migrates every partition underneath both. Written as
// BENCH_queryscan.json (reorgbench -bench queryscan), one trajectory
// per execution mode.

// QueryscanScan aggregates the cold traversals of one layout.
type QueryscanScan struct {
	Hits          uint64  `json:"hits"`
	Misses        uint64  `json:"misses"`
	FaultRate     float64 `json:"fault_rate"`
	MeanLatencyMs float64 `json:"mean_latency_ms"`
	Rows          int     `json:"rows"`
	Restarts      int     `json:"restarts"`
}

// QueryscanSide is one half of the paired scan-on/off interference
// cell.
type QueryscanSide struct {
	MeanTputTps float64 `json:"mean_tput_tps"`
	MeanP99Ms   float64 `json:"mean_p99_ms"`
	Windows     int     `json:"windows"`
	// Scan stats are populated on the scan-on side only.
	Scans        int     `json:"scans,omitempty"`
	ScanRestarts int     `json:"scan_restarts,omitempty"`
	ScanMeanMs   float64 `json:"scan_mean_ms,omitempty"`
}

// QueryscanInterference is the paired cell: the OLTP driver and the
// reorg fleet run in both halves; analytic traversals run only in On.
type QueryscanInterference struct {
	MPL          int           `json:"mpl"`
	Partitions   int           `json:"partitions"`
	WindowMs     float64       `json:"window_ms"`
	FleetMs      float64       `json:"fleet_ms"`
	Off          QueryscanSide `json:"off"`
	On           QueryscanSide `json:"on"`
	TputDeltaPct float64       `json:"tput_delta_pct"`
}

// QueryscanReport is one execution-mode trajectory.
type QueryscanReport struct {
	Timestamp    string   `json:"timestamp"`
	Scale        string   `json:"scale"`
	Env          BenchEnv `json:"env"`
	PageSize     int      `json:"page_size"`
	PoolFrames   int      `json:"pool_frames"`
	Objects      int      `json:"objects"`
	PayloadBytes int      `json:"payload_bytes"`
	Scans        int      `json:"scans"`
	LivePages    int      `json:"live_pages"`

	Declustered QueryscanScan `json:"declustered"`
	Clustered   QueryscanScan `json:"clustered"`
	// Ratios are declustered over clustered: how many times cheaper the
	// traversal got after the clustering pass.
	FaultRateRatio float64 `json:"fault_rate_ratio"`
	LatencyRatio   float64 `json:"latency_ratio"`
	ReorgMs        float64 `json:"reorg_ms"`
	Migrated       int     `json:"migrated"`

	Interference QueryscanInterference `json:"interference"`
}

// QueryscanBench is the persisted BENCH_queryscan.json shape.
type QueryscanBench struct {
	Timestamp    string             `json:"timestamp"`
	Scale        string             `json:"scale"`
	GOMAXPROCS   int                `json:"gomaxprocs"`
	NumCPU       int                `json:"num_cpu"`
	Trajectories []*QueryscanReport `json:"trajectories"`
}

// RunQueryScan runs the benchmark once per requested execution mode and
// writes the JSON report to out. Each trajectory fails unless the
// clustered layout beats the declustered one on BOTH cold-scan fault
// rate and cold-scan latency — the clustering win, measured through a
// real consumer, is the claim this benchmark exists to hold.
func RunQueryScan(w io.Writer, sc Scale, out string) error {
	bench := &QueryscanBench{
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		Scale:      sc.Name,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
	for _, mode := range sc.modes() {
		rep, err := runQueryScanOnce(w, sc, mode)
		if err != nil {
			return err
		}
		bench.Trajectories = append(bench.Trajectories, rep)
	}
	data, err := json.MarshalIndent(bench, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "queryscan: report written to %s\n", out)
	return nil
}

const queryscanPart = oid.PartitionID(1)

// runQueryScanOnce runs one trajectory: the cold-traversal pair on a
// disk-backed store, then the scan-on/off interference cell.
func runQueryScanOnce(w io.Writer, sc Scale, mode hwmode.Mode) (*QueryscanReport, error) {
	objects, payload, frames, scans := 1536, 160, 16, 5
	if sc.Name == "full" {
		objects = 6144
	}

	dir, err := os.MkdirTemp("", "queryscan-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	// The cold-scan pair runs over a forest of disjoint cluster trees
	// (the workload's tree shape, minus its glue edges, which connect
	// every cluster to every other and would make each traversal cover
	// the whole graph) in a single data partition against a
	// deliberately small buffer pool. Each tree is anchored from a
	// partition-0 object: the anchors are the query roots, and they
	// stay valid while migration renames every tree OID underneath.
	p := workload.DefaultParams()
	cfg := db.DefaultConfig()
	env := applyMode(mode, &p, &cfg)
	cfg.PageSize = 4096
	cfg.FlushLatency = 0
	cfg.DiskBacked = true
	cfg.DataDir = dir
	cfg.PoolFrames = frames
	d := db.Open(cfg)
	defer d.Close()
	roots, err := buildClusterForest(d, objects, p.ClusterSize, payload, sc.Params.Seed)
	if err != nil {
		return nil, fmt.Errorf("queryscan: build fixture: %w", err)
	}

	// Decay the layout the way years of churn would, then measure.
	if _, err := shuffleChurn(d, queryscanPart, p.Seed); err != nil {
		return nil, fmt.Errorf("queryscan: decluster: %w", err)
	}
	declustered, err := coldTraversals(d, roots, scans)
	if err != nil {
		return nil, fmt.Errorf("queryscan: declustered traversal: %w", err)
	}

	// Re-cluster with the autopilot's placement policy: dense
	// compaction in DFS order from the partition's ERT entry points.
	reorgStart := time.Now()
	plan := reorg.CompactPlan(queryscanPart)
	r := reorg.New(d, queryscanPart, reorg.Options{
		Mode:           reorg.ModeOffline,
		Plan:           &plan,
		MigrationOrder: autopilot.ClusterOrder(d, queryscanPart),
	})
	if err := r.Run(); err != nil {
		return nil, fmt.Errorf("queryscan: clustering pass: %w", err)
	}
	reorgMs := ms(time.Since(reorgStart))
	clustered, err := coldTraversals(d, roots, scans)
	if err != nil {
		return nil, fmt.Errorf("queryscan: clustered traversal: %w", err)
	}

	rep := &QueryscanReport{
		Timestamp:    time.Now().UTC().Format(time.RFC3339),
		Scale:        sc.Name,
		Env:          env,
		PageSize:     cfg.PageSize,
		PoolFrames:   frames,
		Objects:      objects,
		PayloadBytes: payload,
		Scans:        scans,
		LivePages:    queryscanLivePages(d),
		Declustered:  declustered,
		Clustered:    clustered,
		ReorgMs:      reorgMs,
		Migrated:     r.Stats().Migrated,
	}
	if clustered.FaultRate > 0 {
		rep.FaultRateRatio = declustered.FaultRate / clustered.FaultRate
	}
	if clustered.MeanLatencyMs > 0 {
		rep.LatencyRatio = declustered.MeanLatencyMs / clustered.MeanLatencyMs
	}
	fmt.Fprintf(w, "queryscan[%s]: %d objects over %d live pages, %d-frame pool, %d-row traversals\n",
		env.Mode, rep.Objects, rep.LivePages, frames, clustered.Rows)
	fmt.Fprintf(w, "queryscan[%s]: cold traversal %.2f ms / fault rate %.3f declustered -> %.2f ms / %.3f clustered (%.1fx / %.1fx)\n",
		env.Mode, declustered.MeanLatencyMs, declustered.FaultRate,
		clustered.MeanLatencyMs, clustered.FaultRate, rep.LatencyRatio, rep.FaultRateRatio)
	if clustered.FaultRate >= declustered.FaultRate {
		return nil, fmt.Errorf("queryscan[%s]: clustering did not reduce the traversal fault rate (%.3f -> %.3f)",
			env.Mode, declustered.FaultRate, clustered.FaultRate)
	}
	if clustered.MeanLatencyMs >= declustered.MeanLatencyMs {
		return nil, fmt.Errorf("queryscan[%s]: clustering did not reduce the cold traversal latency (%.2fms -> %.2fms)",
			env.Mode, declustered.MeanLatencyMs, clustered.MeanLatencyMs)
	}

	itf, err := runQueryInterference(w, sc, mode, env)
	if err != nil {
		return nil, err
	}
	rep.Interference = itf
	return rep, nil
}

// buildClusterForest creates total objects in the bench partition as
// disjoint random cluster trees of clusterSize (node i attaches under
// a random earlier node, like the workload's trees), each tree rooted
// from its own partition-0 anchor. It returns the anchors: the stable
// traversal roots — migration renames every tree OID but never touches
// partition 0.
func buildClusterForest(d *db.Database, total, clusterSize, payload int, seed int64) ([]oid.OID, error) {
	if err := d.CreatePartition(workload.RootPartition); err != nil {
		return nil, err
	}
	if err := d.CreatePartition(queryscanPart); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	var anchors []oid.OID
	ci := 0
	for created := 0; created < total; ci++ {
		size := clusterSize
		if size > total-created {
			size = total - created
		}
		tx, err := d.Begin()
		if err != nil {
			return nil, err
		}
		nodes := make([]oid.OID, 0, size)
		for i := 0; i < size; i++ {
			pad := fmt.Sprintf("qs-c%04d-n%04d", ci, i)
			for len(pad) < payload {
				pad += "."
			}
			o, err := tx.Create(queryscanPart, []byte(pad), nil)
			if err != nil {
				tx.Abort()
				return nil, err
			}
			if i > 0 {
				if err := tx.InsertRef(nodes[rng.Intn(len(nodes))], o); err != nil {
					tx.Abort()
					return nil, err
				}
			}
			nodes = append(nodes, o)
		}
		anchor, err := tx.Create(workload.RootPartition,
			[]byte(fmt.Sprintf("qs-anchor-%04d", ci)), []oid.OID{nodes[0]})
		if err != nil {
			tx.Abort()
			return nil, err
		}
		if err := tx.Commit(); err != nil {
			return nil, err
		}
		anchors = append(anchors, anchor)
		created += size
	}
	return anchors, nil
}

func queryscanLivePages(d *db.Database) int {
	st, err := d.Store().PartitionStats(queryscanPart)
	if err != nil {
		return 0
	}
	return st.Pages
}

// coldTraversals empties the pool, then traverses the partition the
// way an analytic client would: cluster by cluster, one operator
// pipeline per root. A clustered cluster tree (~4 pages) fits the
// small pool, so its traversal faults a handful of times; a
// declustered one faults once per object. The pool counters and wall
// time cover the traversals alone, aggregated over all clusters and
// repeated scans times.
func coldTraversals(d *db.Database, roots []oid.OID, scans int) (QueryscanScan, error) {
	st := d.Store()
	var res QueryscanScan
	var totalMs float64
	for s := 0; s < scans; s++ {
		if err := st.EvictAll(); err != nil {
			return res, err
		}
		rows := 0
		before := st.PoolStats()
		start := time.Now()
		for _, root := range roots {
			root := root
			qres, err := query.Run(d, query.Options{}, func(e *query.Exec) (query.Operator, error) {
				return query.NewFollowRefs([]oid.OID{root}, -1), nil
			})
			if err != nil {
				return res, err
			}
			rows += len(qres.Rows)
			res.Restarts += qres.Attempts - 1
		}
		totalMs += ms(time.Since(start))
		after := st.PoolStats()
		res.Hits += after.Hits - before.Hits
		res.Misses += after.Misses - before.Misses
		res.Rows = rows
	}
	if total := res.Hits + res.Misses; total > 0 {
		res.FaultRate = float64(res.Misses) / float64(total)
	}
	res.MeanLatencyMs = totalMs / float64(scans)
	return res, nil
}

// runQueryInterference runs the paired scan-on/off cell: an OLTP
// driver and a reorg fleet over every data partition in both halves,
// plus analytic traversal workers in the ON half. The report pairs
// mean throughput and p99 over the fleet windows, so the delta is the
// price OLTP pays for concurrent analytic scans under reorganization.
func runQueryInterference(w io.Writer, sc Scale, mode hwmode.Mode, env BenchEnv) (QueryscanInterference, error) {
	p := sc.Params
	p.NumPartitions = 4
	p.ObjectsPerPartition = 510
	p.MPL = 8
	if sc.Name == "full" {
		p.ObjectsPerPartition = 1020
	}
	cfg := db.DefaultConfig()
	applyMode(mode, &p, &cfg)
	cfg.LockTimeout = 300 * time.Millisecond

	itf := QueryscanInterference{
		MPL:        p.MPL,
		Partitions: p.NumPartitions,
		WindowMs:   100,
	}
	on, err := runQueryInterferenceCell(p, cfg, true, 0)
	if err != nil {
		return itf, fmt.Errorf("queryscan: scan-on cell: %w", err)
	}
	off, err := runQueryInterferenceCell(p, cfg, false, on.windows)
	if err != nil {
		return itf, fmt.Errorf("queryscan: scan-off cell: %w", err)
	}
	itf.On, itf.Off, itf.FleetMs = on.side, off.side, on.fleetMs
	if itf.Off.MeanTputTps > 0 {
		itf.TputDeltaPct = 100 * (1 - itf.On.MeanTputTps/itf.Off.MeanTputTps)
	}
	fmt.Fprintf(w, "queryscan[%s]: interference — OLTP %.1f tps / p99 %.1f ms scans-off vs %.1f tps / p99 %.1f ms scans-on (%+.1f%%), %d scans committed\n",
		env.Mode, itf.Off.MeanTputTps, itf.Off.MeanP99Ms,
		itf.On.MeanTputTps, itf.On.MeanP99Ms, itf.TputDeltaPct, itf.On.Scans)
	if on.side.Scans == 0 {
		return itf, fmt.Errorf("queryscan[%s]: no analytic scan committed during the fleet window", env.Mode)
	}
	return itf, nil
}

type queryItfRun struct {
	side    QueryscanSide
	windows int
	fleetMs float64
}

// runQueryInterferenceCell runs one half. With scansOn, traversal
// workers run for the whole fleet window and every committed traversal
// is checked against the quiescent baseline multiset — a wrong answer
// fails the benchmark, not just the query.
func runQueryInterferenceCell(p workload.Params, cfg db.Config, scansOn bool, totalWindows int) (*queryItfRun, error) {
	wl, err := workload.Build(cfg, p)
	if err != nil {
		return nil, err
	}
	defer wl.DB.Close()
	d := wl.DB
	roots := wl.Roots()

	traverse := func(budget int) (*query.Result, error) {
		return query.Run(d, query.Options{MaxRestarts: budget}, func(e *query.Exec) (query.Operator, error) {
			return query.NewFollowRefs(roots, -1), nil
		})
	}
	base, err := traverse(5)
	if err != nil {
		return nil, fmt.Errorf("baseline traversal: %w", err)
	}
	want := query.Multiset(query.Payloads(base.Rows))

	rec := metrics.NewRecorder()
	driver := workload.NewDriver(wl, rec)
	driver.Start()
	time.Sleep(300 * time.Millisecond)
	basetime := time.Now()

	var parts []oid.PartitionID
	for pt := 1; pt <= p.NumPartitions; pt++ {
		parts = append(parts, oid.PartitionID(pt))
	}
	s, err := reorg.NewScheduler(d, parts, reorg.FleetOptions{
		Workers: 2,
		Reorg: reorg.Options{
			Mode:       reorg.ModeIRA,
			BatchSize:  8,
			MaxRetries: 5000,
			// Must outlast a full analytic traversal (see the race cell).
			WaitTimeout: 3 * time.Second,
		},
	})
	if err != nil {
		driver.Stop()
		return nil, err
	}
	fleetStart := time.Now()
	fleetDone := make(chan error, 1)
	go func() { fleetDone <- s.Run() }()

	var (
		stop     = make(chan struct{})
		wg       sync.WaitGroup
		scanMu   sync.Mutex
		scans    int
		restarts int
		scanMs   float64
		scanErr  error
	)
	if scansOn {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				start := time.Now()
				res, err := traverse(30)
				if err != nil {
					if errors.Is(err, query.ErrRestartsExhausted) {
						continue // liveness hiccup under contention; retry
					}
					scanMu.Lock()
					if scanErr == nil {
						scanErr = err
					}
					scanMu.Unlock()
					return
				}
				got := query.Multiset(query.Payloads(res.Rows))
				ok := len(got) == len(want)
				for s, n := range want {
					if got[s] != n {
						ok = false
						break
					}
				}
				scanMu.Lock()
				if !ok && scanErr == nil {
					scanErr = fmt.Errorf("committed traversal drifted from the baseline payload multiset")
				}
				scans++
				restarts += res.Attempts - 1
				scanMs += ms(time.Since(start))
				scanMu.Unlock()
				time.Sleep(5 * time.Millisecond)
			}
		}()
	}

	run := &queryItfRun{}
	window := 100 * time.Millisecond
	var points []InterferencePoint
	if totalWindows > 0 {
		// Paired half: sample exactly the other half's window count,
		// letting the fleet finish in the background of the later ones.
		fleetErr := error(nil)
		fleetRunning := true
		for i := 0; i < totalWindows; i++ {
			points = append(points, sampleWindow(rec, window, basetime, fleetRunning))
			select {
			case fleetErr = <-fleetDone:
				fleetRunning = false
			default:
			}
		}
		if fleetRunning {
			fleetErr = <-fleetDone
		}
		if fleetErr != nil {
			driver.Stop()
			return nil, fmt.Errorf("fleet: %w (failures: %v)", fleetErr, s.Failures())
		}
	} else {
		var fleetErr error
	sampling:
		for {
			points = append(points, sampleWindow(rec, window, basetime, true))
			select {
			case fleetErr = <-fleetDone:
				break sampling
			default:
			}
		}
		if fleetErr != nil {
			close(stop)
			wg.Wait()
			driver.Stop()
			return nil, fmt.Errorf("fleet: %w (failures: %v)", fleetErr, s.Failures())
		}
	}
	run.fleetMs = ms(time.Since(fleetStart))
	close(stop)
	wg.Wait()
	driver.Stop()
	if scanErr != nil {
		return nil, scanErr
	}

	var idx []int
	for i, pt := range points {
		if pt.ReorgActive {
			idx = append(idx, i)
		}
	}
	run.windows = len(points)
	run.side = QueryscanSide{
		MeanTputTps: meanOver(points, idx, func(p InterferencePoint) float64 { return p.Throughput }),
		MeanP99Ms:   meanOver(points, idx, func(p InterferencePoint) float64 { return p.P99Ms }),
		Windows:     len(idx),
	}
	if scansOn {
		run.side.Scans, run.side.ScanRestarts = scans, restarts
		if scans > 0 {
			run.side.ScanMeanMs = scanMs / float64(scans)
		}
	}
	return run, nil
}
