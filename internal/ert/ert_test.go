package ert

import (
	"reflect"
	"testing"

	"repro/internal/oid"
)

var (
	child1  = oid.New(1, 1, 0)
	child2  = oid.New(1, 1, 1)
	parentA = oid.New(2, 1, 0)
	parentB = oid.New(3, 1, 0)
)

func TestAddRemove(t *testing.T) {
	e := New(1)
	e.AddRef(child1, parentA)
	e.AddRef(child1, parentB)
	e.AddRef(child2, parentA)
	if got := e.Parents(child1); !reflect.DeepEqual(got, []oid.OID{parentA, parentB}) {
		t.Fatalf("Parents(child1) = %v", got)
	}
	if e.Refs() != 3 || e.Children() != 2 {
		t.Fatalf("Refs = %d, Children = %d", e.Refs(), e.Children())
	}
	e.RemoveRef(child1, parentA)
	if got := e.Parents(child1); !reflect.DeepEqual(got, []oid.OID{parentB}) {
		t.Fatalf("Parents after remove = %v", got)
	}
	e.RemoveRef(child1, parentB)
	if e.HasChild(child1) {
		t.Fatal("child1 still referenced after removing all parents")
	}
	if e.Refs() != 1 {
		t.Fatalf("Refs = %d, want 1", e.Refs())
	}
}

func TestRefCountsPerPair(t *testing.T) {
	e := New(1)
	e.AddRef(child1, parentA)
	e.AddRef(child1, parentA) // same parent references child twice
	if got := e.Parents(child1); len(got) != 1 {
		t.Fatalf("Parents = %v, want one distinct parent", got)
	}
	e.RemoveRef(child1, parentA)
	if !e.HasChild(child1) {
		t.Fatal("child dropped while one reference remains")
	}
	e.RemoveRef(child1, parentA)
	if e.HasChild(child1) {
		t.Fatal("child retained after all references removed")
	}
}

func TestRemoveUnknownIsNoop(t *testing.T) {
	e := New(1)
	e.RemoveRef(child1, parentA)
	if e.Refs() != 0 || e.Children() != 0 {
		t.Fatalf("phantom state after no-op remove: %d refs", e.Refs())
	}
	e.AddRef(child1, parentA)
	e.RemoveRef(child1, parentB) // wrong parent
	if !e.HasChild(child1) || e.Refs() != 1 {
		t.Fatal("no-op remove disturbed real reference")
	}
}

func TestReferencedObjectsSorted(t *testing.T) {
	e := New(1)
	e.AddRef(child2, parentA)
	e.AddRef(child1, parentA)
	got := e.ReferencedObjects()
	if !reflect.DeepEqual(got, []oid.OID{child1, child2}) {
		t.Fatalf("ReferencedObjects = %v", got)
	}
}

func TestRange(t *testing.T) {
	e := New(1)
	e.AddRef(child1, parentA)
	e.AddRef(child1, parentA)
	e.AddRef(child2, parentB)
	type triple struct {
		c, p oid.OID
		n    int
	}
	var got []triple
	e.Range(func(c, p oid.OID, n int) bool {
		got = append(got, triple{c, p, n})
		return true
	})
	if len(got) != 2 {
		t.Fatalf("Range visited %d pairs, want 2", len(got))
	}
	for _, tr := range got {
		switch tr.c {
		case child1:
			if tr.p != parentA || tr.n != 2 {
				t.Fatalf("child1 entry = %+v", tr)
			}
		case child2:
			if tr.p != parentB || tr.n != 1 {
				t.Fatalf("child2 entry = %+v", tr)
			}
		default:
			t.Fatalf("unexpected child %v", tr.c)
		}
	}
}

func TestClear(t *testing.T) {
	e := New(1)
	e.AddRef(child1, parentA)
	e.Clear()
	if e.Refs() != 0 || e.Children() != 0 || e.HasChild(child1) {
		t.Fatal("Clear left state behind")
	}
}

func TestSnapshotRestore(t *testing.T) {
	e := New(1)
	e.AddRef(child1, parentA)
	e.AddRef(child1, parentA)
	e.AddRef(child2, parentB)
	snap := e.Snapshot()
	e.AddRef(child2, parentA) // diverge after snapshot

	r := New(1)
	r.Restore(snap)
	if r.Refs() != 3 {
		t.Fatalf("restored Refs = %d, want 3", r.Refs())
	}
	if got := r.Parents(child1); !reflect.DeepEqual(got, []oid.OID{parentA}) {
		t.Fatalf("restored Parents(child1) = %v", got)
	}
	// Multiplicity preserved: one remove keeps the child.
	r.RemoveRef(child1, parentA)
	if !r.HasChild(child1) {
		t.Fatal("snapshot lost reference multiplicity")
	}
	if got := r.Parents(child2); !reflect.DeepEqual(got, []oid.OID{parentB}) {
		t.Fatalf("restored Parents(child2) = %v", got)
	}
}

func TestPartition(t *testing.T) {
	if e := New(7); e.Partition() != 7 {
		t.Fatalf("Partition = %d", e.Partition())
	}
}
