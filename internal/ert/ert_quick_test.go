package ert

import (
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/oid"
)

// ertOp is one random table operation. The fields are small unsigned
// integers so testing/quick can generate sequences directly; kind is
// interpreted modulo the number of operation kinds.
type ertOp struct {
	Kind   uint8
	Child  uint8
	Parent uint8
}

// childOID maps the generator's small child id into partition 1.
func childOID(c uint8) oid.OID {
	return oid.New(1, oid.PageNum(c/8+1), oid.SlotNum(c%8))
}

// parentOID maps the generator's small parent id outside partition 1.
func parentOID(p uint8) oid.OID {
	return oid.New(2, oid.PageNum(p/8+1), oid.SlotNum(p%8))
}

// ertOracle is the naive model: a plain nested map plus a total counter,
// mutated with the obvious code.
type ertOracle struct {
	refs  map[oid.OID]map[oid.OID]int
	total int
}

func newErtOracle() *ertOracle { return &ertOracle{refs: make(map[oid.OID]map[oid.OID]int)} }

func (o *ertOracle) add(child, parent oid.OID) {
	if o.refs[child] == nil {
		o.refs[child] = make(map[oid.OID]int)
	}
	o.refs[child][parent]++
	o.total++
}

func (o *ertOracle) remove(child, parent oid.OID) {
	ps := o.refs[child]
	if ps == nil || ps[parent] == 0 {
		return // removing an unrecorded reference is a no-op
	}
	ps[parent]--
	o.total--
	if ps[parent] == 0 {
		delete(ps, parent)
	}
	if len(ps) == 0 {
		delete(o.refs, child)
	}
}

func (o *ertOracle) parents(child oid.OID) []oid.OID {
	ps := o.refs[child]
	if len(ps) == 0 {
		return nil
	}
	out := make([]oid.OID, 0, len(ps))
	for p := range ps {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// agree checks every observable accessor of the table against the
// oracle; it returns false (and logs) on the first divergence.
func agree(t *testing.T, tab *Table, o *ertOracle) bool {
	t.Helper()
	if tab.Refs() != o.total {
		t.Logf("Refs() = %d, oracle total = %d", tab.Refs(), o.total)
		return false
	}
	if tab.Children() != len(o.refs) {
		t.Logf("Children() = %d, oracle children = %d", tab.Children(), len(o.refs))
		return false
	}
	for child := range o.refs {
		if got, want := tab.Parents(child), o.parents(child); !reflect.DeepEqual(got, want) {
			t.Logf("Parents(%s) = %v, oracle %v", child, got, want)
			return false
		}
	}
	// Range must enumerate exactly the oracle's (child, parent, count)
	// triples.
	seen := make(map[oid.OID]map[oid.OID]int)
	sum := 0
	tab.Range(func(child, parent oid.OID, count int) bool {
		if seen[child] == nil {
			seen[child] = make(map[oid.OID]int)
		}
		seen[child][parent] += count
		sum += count
		return true
	})
	if sum != o.total || !reflect.DeepEqual(seen, o.refs) {
		t.Logf("Range enumerated %d refs %v, oracle %d refs %v", sum, seen, o.total, o.refs)
		return false
	}
	return true
}

// TestQuickTableMatchesOracle drives random AddRef / RemoveRef / migrate
// sequences through the table and the naive oracle in lockstep. The
// check after every operation pins the nRefs invariant: the atomic total
// always equals the multiset size of the map contents — in particular
// RemoveRef of an absent reference must not decrement it, and a migrate
// (retargeting every reference of one child to a new child OID, as IRA
// does when an object moves) must leave the total unchanged.
func TestQuickTableMatchesOracle(t *testing.T) {
	prop := func(ops []ertOp) bool {
		tab := New(1)
		o := newErtOracle()
		for _, op := range ops {
			child, parent := childOID(op.Child), parentOID(op.Parent)
			switch op.Kind % 3 {
			case 0:
				tab.AddRef(child, parent)
				o.add(child, parent)
			case 1:
				tab.RemoveRef(child, parent)
				o.remove(child, parent)
			case 2:
				// Migrate: child moves to a fresh OID; every external
				// reference is retargeted pair-wise, exactly as the
				// reorganizer's parent repointing drives the table.
				newChild := childOID(op.Child ^ 0x80)
				if newChild == child {
					continue
				}
				before := tab.Refs()
				for _, p := range tab.Parents(child) {
					n := o.refs[child][p]
					for i := 0; i < n; i++ {
						tab.RemoveRef(child, p)
						tab.AddRef(newChild, p)
						o.remove(child, p)
						o.add(newChild, p)
					}
				}
				if tab.Refs() != before {
					t.Logf("migrate changed total refs: %d -> %d", before, tab.Refs())
					return false
				}
			}
			if !agree(t, tab, o) {
				return false
			}
		}
		// Snapshot / Restore must round-trip the final state.
		tab.Restore(tab.Snapshot())
		return agree(t, tab, o)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
