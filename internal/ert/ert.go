// Package ert implements the External Reference Table.
//
// Each partition P has an ERT storing every reference R→O such that O
// belongs to P and R does not (paper §2): back pointers for references
// coming into the partition from outside. The objects O appearing in the
// table are its "referenced objects" and are the starting points of the
// fuzzy traversal — together with Lemma 3.1 they guarantee the traversal
// reaches every live object of the partition without ever leaving it.
//
// The table is keyed by an extendible hash on the child OID, as in the
// paper's Brahmā implementation. Reference counts are kept per (child,
// parent) pair because an object may legitimately hold several references
// to the same child.
package ert

import (
	"sort"
	"sync/atomic"

	"repro/internal/exthash"
	"repro/internal/oid"
)

// Table is the External Reference Table of one partition.
type Table struct {
	part oid.PartitionID

	// m maps child OID -> parent OID -> reference count. The inner map
	// is mutated only via exthash.Update, under the hash table's lock.
	m *exthash.Map[map[oid.OID]int]

	// nRefs is the total reference count (with multiplicity). Atomic so
	// AddRef/RemoveRef touch exactly one lock — the hash bucket's — per
	// call instead of also serializing on a table-wide side mutex.
	nRefs atomic.Int64
}

// New creates an empty ERT for partition part.
func New(part oid.PartitionID) *Table {
	return &Table{part: part, m: exthash.New[map[oid.OID]int]()}
}

// Partition returns the partition this table belongs to.
func (t *Table) Partition() oid.PartitionID { return t.part }

// AddRef records one external reference parent→child. The caller is
// responsible for ensuring child is in this partition and parent is not.
//
// Both mutators copy the inner map instead of updating it in place:
// Parents hands the map obtained from Get to its caller's iteration
// outside the hash table's lock, so every published map must stay
// immutable. Inner maps are small (the external parents of one child),
// so the copy is cheap.
func (t *Table) AddRef(child, parent oid.OID) {
	t.m.Update(uint64(child), func(cur map[oid.OID]int, ok bool) (map[oid.OID]int, bool) {
		next := make(map[oid.OID]int, len(cur)+1)
		for p, c := range cur {
			next[p] = c
		}
		next[parent]++
		return next, true
	})
	t.nRefs.Add(1)
}

// RemoveRef removes one external reference parent→child. Removing a
// reference that was never added is a no-op (the log analyzer may observe
// deletes for references that predate the table's construction scan).
func (t *Table) RemoveRef(child, parent oid.OID) {
	removed := false
	t.m.Update(uint64(child), func(cur map[oid.OID]int, ok bool) (map[oid.OID]int, bool) {
		if !ok {
			return nil, false
		}
		if _, has := cur[parent]; !has {
			return cur, len(cur) > 0
		}
		removed = true
		next := make(map[oid.OID]int, len(cur))
		for p, c := range cur {
			next[p] = c
		}
		if next[parent] <= 1 {
			delete(next, parent)
		} else {
			next[parent]--
		}
		return next, len(next) > 0
	})
	if removed {
		t.nRefs.Add(-1)
	}
}

// Parents returns the distinct external parents of child, sorted for
// determinism.
func (t *Table) Parents(child oid.OID) []oid.OID {
	cur, ok := t.m.Get(uint64(child))
	if !ok {
		return nil
	}
	out := make([]oid.OID, 0, len(cur))
	for p := range cur {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// HasChild reports whether child has any external references.
func (t *Table) HasChild(child oid.OID) bool {
	_, ok := t.m.Get(uint64(child))
	return ok
}

// ReferencedObjects returns the referenced objects of the ERT — the fuzzy
// traversal's roots — sorted for determinism.
func (t *Table) ReferencedObjects() []oid.OID {
	keys := t.m.Keys()
	out := make([]oid.OID, len(keys))
	for i, k := range keys {
		out[i] = oid.OID(k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SampleReferenced returns up to n referenced objects chosen
// deterministically from seed. The autopilot seeds its reference-
// locality probes from the ERT this way: the referenced objects are the
// partition's externally anchored entry points (the same roots the fuzzy
// traversal starts from), and a bounded sample keeps the probe cheap on
// large tables.
func (t *Table) SampleReferenced(n int, seed uint64) []oid.OID {
	keys := t.m.Keys()
	// Keys() order is hash-table order; sort first so the sample depends
	// only on the seed and table contents.
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	if n > len(keys) {
		n = len(keys)
	}
	// Partial Fisher-Yates driven by an LCG: the first n positions are a
	// uniform sample without replacement.
	for i := 0; i < n; i++ {
		seed = seed*6364136223846793005 + 1442695040888963407
		j := i + int(seed%uint64(len(keys)-i))
		keys[i], keys[j] = keys[j], keys[i]
	}
	out := make([]oid.OID, n)
	for i := 0; i < n; i++ {
		out[i] = oid.OID(keys[i])
	}
	return out
}

// Children returns the number of referenced objects.
func (t *Table) Children() int { return t.m.Len() }

// Refs returns the total number of external references (counting
// multiplicity).
func (t *Table) Refs() int { return int(t.nRefs.Load()) }

// Range calls fn for every (child, parent, count) triple until fn returns
// false. Parents for one child are visited together but in map order.
func (t *Table) Range(fn func(child, parent oid.OID, count int) bool) {
	type entry struct {
		child, parent oid.OID
		count         int
	}
	var all []entry
	t.m.Range(func(k uint64, parents map[oid.OID]int) bool {
		for p, c := range parents {
			all = append(all, entry{oid.OID(k), p, c})
		}
		return true
	})
	for _, e := range all {
		if !fn(e.child, e.parent, e.count) {
			return
		}
	}
}

// Clear empties the table.
func (t *Table) Clear() {
	t.m.Clear()
	t.nRefs.Store(0)
}

// Snapshot captures the table contents for checkpointing (§4.4 discusses
// checkpointing the ERT to bound recovery work).
type Snapshot struct {
	Part oid.PartitionID
	Refs map[oid.OID]map[oid.OID]int
}

// Snapshot deep-copies the table.
func (t *Table) Snapshot() *Snapshot {
	s := &Snapshot{Part: t.part, Refs: make(map[oid.OID]map[oid.OID]int)}
	t.m.Range(func(k uint64, parents map[oid.OID]int) bool {
		cp := make(map[oid.OID]int, len(parents))
		for p, c := range parents {
			cp[p] = c
		}
		s.Refs[oid.OID(k)] = cp
		return true
	})
	return s
}

// Restore replaces the table contents with the snapshot.
func (t *Table) Restore(s *Snapshot) {
	t.Clear()
	for child, parents := range s.Refs {
		for p, c := range parents {
			for i := 0; i < c; i++ {
				t.AddRef(child, p)
			}
		}
	}
}
