// Package ert implements the External Reference Table.
//
// Each partition P has an ERT storing every reference R→O such that O
// belongs to P and R does not (paper §2): back pointers for references
// coming into the partition from outside. The objects O appearing in the
// table are its "referenced objects" and are the starting points of the
// fuzzy traversal — together with Lemma 3.1 they guarantee the traversal
// reaches every live object of the partition without ever leaving it.
//
// The table is keyed by an extendible hash on the child OID, as in the
// paper's Brahmā implementation. Reference counts are kept per (child,
// parent) pair because an object may legitimately hold several references
// to the same child.
package ert

import (
	"sort"
	"sync/atomic"

	"repro/internal/exthash"
	"repro/internal/oid"
)

// Table is the External Reference Table of one partition.
type Table struct {
	part oid.PartitionID

	// m maps child OID -> parent OID -> reference count. The inner map
	// is mutated only via exthash.Update, under the hash table's lock.
	m *exthash.Map[map[oid.OID]int]

	// nRefs is the total reference count (with multiplicity). Atomic so
	// AddRef/RemoveRef touch exactly one lock — the hash bucket's — per
	// call instead of also serializing on a table-wide side mutex.
	nRefs atomic.Int64
}

// New creates an empty ERT for partition part.
func New(part oid.PartitionID) *Table {
	return &Table{part: part, m: exthash.New[map[oid.OID]int]()}
}

// Partition returns the partition this table belongs to.
func (t *Table) Partition() oid.PartitionID { return t.part }

// AddRef records one external reference parent→child. The caller is
// responsible for ensuring child is in this partition and parent is not.
func (t *Table) AddRef(child, parent oid.OID) {
	t.m.Update(uint64(child), func(cur map[oid.OID]int, ok bool) (map[oid.OID]int, bool) {
		if !ok {
			cur = make(map[oid.OID]int, 1)
		}
		cur[parent]++
		return cur, true
	})
	t.nRefs.Add(1)
}

// RemoveRef removes one external reference parent→child. Removing a
// reference that was never added is a no-op (the log analyzer may observe
// deletes for references that predate the table's construction scan).
func (t *Table) RemoveRef(child, parent oid.OID) {
	removed := false
	t.m.Update(uint64(child), func(cur map[oid.OID]int, ok bool) (map[oid.OID]int, bool) {
		if !ok {
			return nil, false
		}
		if n, has := cur[parent]; has {
			removed = true
			if n <= 1 {
				delete(cur, parent)
			} else {
				cur[parent] = n - 1
			}
		}
		return cur, len(cur) > 0
	})
	if removed {
		t.nRefs.Add(-1)
	}
}

// Parents returns the distinct external parents of child, sorted for
// determinism.
func (t *Table) Parents(child oid.OID) []oid.OID {
	cur, ok := t.m.Get(uint64(child))
	if !ok {
		return nil
	}
	out := make([]oid.OID, 0, len(cur))
	for p := range cur {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// HasChild reports whether child has any external references.
func (t *Table) HasChild(child oid.OID) bool {
	_, ok := t.m.Get(uint64(child))
	return ok
}

// ReferencedObjects returns the referenced objects of the ERT — the fuzzy
// traversal's roots — sorted for determinism.
func (t *Table) ReferencedObjects() []oid.OID {
	keys := t.m.Keys()
	out := make([]oid.OID, len(keys))
	for i, k := range keys {
		out[i] = oid.OID(k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Children returns the number of referenced objects.
func (t *Table) Children() int { return t.m.Len() }

// Refs returns the total number of external references (counting
// multiplicity).
func (t *Table) Refs() int { return int(t.nRefs.Load()) }

// Range calls fn for every (child, parent, count) triple until fn returns
// false. Parents for one child are visited together but in map order.
func (t *Table) Range(fn func(child, parent oid.OID, count int) bool) {
	type entry struct {
		child, parent oid.OID
		count         int
	}
	var all []entry
	t.m.Range(func(k uint64, parents map[oid.OID]int) bool {
		for p, c := range parents {
			all = append(all, entry{oid.OID(k), p, c})
		}
		return true
	})
	for _, e := range all {
		if !fn(e.child, e.parent, e.count) {
			return
		}
	}
}

// Clear empties the table.
func (t *Table) Clear() {
	t.m.Clear()
	t.nRefs.Store(0)
}

// Snapshot captures the table contents for checkpointing (§4.4 discusses
// checkpointing the ERT to bound recovery work).
type Snapshot struct {
	Part oid.PartitionID
	Refs map[oid.OID]map[oid.OID]int
}

// Snapshot deep-copies the table.
func (t *Table) Snapshot() *Snapshot {
	s := &Snapshot{Part: t.part, Refs: make(map[oid.OID]map[oid.OID]int)}
	t.m.Range(func(k uint64, parents map[oid.OID]int) bool {
		cp := make(map[oid.OID]int, len(parents))
		for p, c := range parents {
			cp[p] = c
		}
		s.Refs[oid.OID(k)] = cp
		return true
	})
	return s
}

// Restore replaces the table contents with the snapshot.
func (t *Table) Restore(s *Snapshot) {
	t.Clear()
	for child, parents := range s.Refs {
		for p, c := range parents {
			for i := 0; i < c; i++ {
				t.AddRef(child, p)
			}
		}
	}
}
