// Package workload implements the paper's experimental workload (§5.2).
//
// The database holds NUMPARTITIONS partitions of NUMOBJS objects each,
// organized into clusters: each cluster is a tree of ClusterSize (85)
// objects, and each node carries one extra "glue" edge to a node of
// another cluster, which lands in a different partition with probability
// GLUEFACTOR. The roots of the clusters are the persistent roots; a root
// table in partition 0 references them (partition 0 stands in for the
// paper's dedicated persistent-root partition, so every cluster root has
// an entry in its partition's ERT).
//
// MPL worker threads each submit one transaction at a time: a random walk
// of OpsPerTrans objects starting at a random persistent root of the
// thread's home partition, locking each object in exclusive mode with
// probability UpdateProb (shared otherwise). A transaction that hits a
// lock timeout is resubmitted until it commits; its response time spans
// all attempts — that is what makes PQR's response-time tail explode.
//
// One deliberate substitution from the paper's testbed: the experiments
// ran on a single 167 MHz CPU that saturated around MPL 5. To reproduce
// that throughput shape on a modern multi-core host, each object access
// spends CPUPerOp inside a simulated CPU — a semaphore of CPUTokens
// servers, capacity 1 by default, emulating the uniprocessor. Set
// CPUPerOp to zero to disable the charge entirely, or CPUTokens to 0
// (hardware mode) to drop the token and spin-burn on the real CPU, so
// the work parallelizes across however many cores the host has.
package workload

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/db"
	"repro/internal/hwmode"
	"repro/internal/lock"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/oid"
)

// Params are the Table 1 workload parameters plus implementation knobs.
type Params struct {
	NumPartitions       int     // data partitions (Table 1: 10)
	ObjectsPerPartition int     // Table 1: 4080
	MPL                 int     // Table 1: 30
	OpsPerTrans         int     // Table 1: 8
	UpdateProb          float64 // Table 1: 0.5
	GlueFactor          float64 // Table 1: 0.05
	ClusterSize         int     // §5.2: 85 objects per cluster tree
	PayloadSize         int     // §5.3.3: ~100-byte objects
	// RefChurnProb is the probability that an exclusive access retargets
	// the object's glue edge instead of updating its payload. The paper
	// does not spell out the update mix; a small reference-churn share
	// exercises the TRT machinery the algorithm exists for. Set 0 for
	// payload-only updates.
	RefChurnProb float64
	// CPUPerOp is the simulated uniprocessor cost per object access.
	CPUPerOp time.Duration
	// ReorgCPUPerObject is the simulated uniprocessor cost of migrating
	// one object (copying it and rewriting parents); the reorganizer is
	// charged on the same CPU the transactions use.
	ReorgCPUPerObject time.Duration
	// CPUTokens is the capacity of the simulated-CPU semaphore burnCPU
	// charges against. 1 (the DefaultParams value) reproduces the
	// paper's uniprocessor; N > 1 models an N-way machine by admitting N
	// concurrent burners; 0 bypasses the token entirely — the charge is
	// spun on the real CPU with no serialization, which is hardware
	// mode's "as fast as the host allows" trajectory.
	CPUTokens int
	Seed      int64
}

// DefaultParams returns the paper's defaults (Table 1). The CPU token
// capacity follows the process mode: 1 (the paper's uniprocessor) in
// fidelity mode, 0 (bypass) when REORG_MODE=hardware — so the whole
// test suite runs in either mode unmodified, like REORG_DISK_BACKED
// does for the store.
func DefaultParams() Params {
	tokens := 1
	if hwmode.Enabled() {
		tokens = 0
	}
	return Params{
		CPUTokens:           tokens,
		NumPartitions:       10,
		ObjectsPerPartition: 4080,
		MPL:                 30,
		OpsPerTrans:         8,
		UpdateProb:          0.5,
		GlueFactor:          0.05,
		ClusterSize:         85,
		PayloadSize:         64,
		RefChurnProb:        0.05,
		CPUPerOp:            50 * time.Microsecond,
		ReorgCPUPerObject:   200 * time.Microsecond,
		Seed:                1,
	}
}

// RootPartition is the partition holding the root table.
const RootPartition oid.PartitionID = 0

// Workload is a built database plus its graph metadata.
type Workload struct {
	DB     *db.Database
	Params Params
	// ClusterRoots[p] lists the persistent roots (cluster tree roots) of
	// data partition p+1.
	ClusterRoots map[oid.PartitionID][]oid.OID
	// RootTable lists the partition-0 objects referencing the cluster
	// roots (one per cluster). These are the persistent roots: walks
	// start here, so every entry into a data partition passes through an
	// external parent — the property PQR's quiesce argument needs.
	RootTable []oid.OID
	// rootsByPart indexes the root-table entries by the data partition
	// their cluster lives in.
	rootsByPart map[oid.PartitionID][]oid.OID

	// cpu is the simulated-CPU semaphore: capacity Params.CPUTokens.
	// nil means the token is bypassed (CPUTokens 0, hardware mode) and
	// burnCPU charges spin on the real CPU unserialized.
	cpu chan struct{}
}

// CPUTokenCapacity returns the built semaphore's capacity (0 when the
// token is bypassed); benchmark reports stamp it into their JSON.
func (w *Workload) CPUTokenCapacity() int {
	if w.cpu == nil {
		return 0
	}
	return cap(w.cpu)
}

// Build creates the database and object graph.
func Build(cfg db.Config, p Params) (*Workload, error) {
	d := db.Open(cfg)
	w := &Workload{
		DB:           d,
		Params:       p,
		ClusterRoots: make(map[oid.PartitionID][]oid.OID),
		rootsByPart:  make(map[oid.PartitionID][]oid.OID),
	}
	if p.CPUTokens > 0 {
		w.cpu = make(chan struct{}, p.CPUTokens)
	}
	if err := d.CreatePartition(RootPartition); err != nil {
		return nil, err
	}
	for i := 1; i <= p.NumPartitions; i++ {
		if err := d.CreatePartition(oid.PartitionID(i)); err != nil {
			return nil, err
		}
	}
	rng := rand.New(rand.NewSource(p.Seed))

	// Pass 1: create all cluster trees.
	var clusters []cluster
	for pi := 1; pi <= p.NumPartitions; pi++ {
		part := oid.PartitionID(pi)
		remaining := p.ObjectsPerPartition
		ci := 0
		for remaining > 0 {
			size := p.ClusterSize
			if size > remaining {
				size = remaining
			}
			nodes, err := w.buildClusterTree(part, ci, size, rng)
			if err != nil {
				return nil, err
			}
			clusters = append(clusters, cluster{part: part, nodes: nodes})
			w.ClusterRoots[part] = append(w.ClusterRoots[part], nodes[0])
			remaining -= size
			ci++
		}
	}

	// Pass 2: glue edges — one per node, to a node of another cluster,
	// crossing partitions with probability GlueFactor.
	tx, err := d.Begin()
	if err != nil {
		return nil, err
	}
	ops := 0
	for ci, c := range clusters {
		for _, n := range c.nodes {
			target, ok := w.pickGlueTarget(clusters, ci, rng)
			if !ok {
				continue
			}
			if err := tx.InsertRef(n, target); err != nil {
				tx.Abort()
				return nil, err
			}
			if ops++; ops >= 2000 {
				if err := tx.Commit(); err != nil {
					return nil, err
				}
				if tx, err = d.Begin(); err != nil {
					return nil, err
				}
				ops = 0
			}
		}
	}

	// Pass 3: the root table in partition 0 (one object per cluster).
	for i, c := range clusters {
		root, err := tx.Create(RootPartition, []byte(fmt.Sprintf("root-%05d", i)), []oid.OID{c.nodes[0]})
		if err != nil {
			tx.Abort()
			return nil, err
		}
		w.RootTable = append(w.RootTable, root)
		w.rootsByPart[c.part] = append(w.rootsByPart[c.part], root)
	}
	if err := tx.Commit(); err != nil {
		return nil, err
	}
	return w, nil
}

// cluster is one tree of objects within a partition.
type cluster struct {
	part  oid.PartitionID
	nodes []oid.OID
}

// buildClusterTree creates one cluster: a random tree of size objects in
// part, committed as one transaction. Node i attaches under a random
// earlier node, giving the varied fan-out of real object graphs.
func (w *Workload) buildClusterTree(part oid.PartitionID, ci, size int, rng *rand.Rand) ([]oid.OID, error) {
	tx, err := w.DB.Begin()
	if err != nil {
		return nil, err
	}
	nodes := make([]oid.OID, 0, size)
	for i := 0; i < size; i++ {
		payload := w.payload(part, ci, i)
		o, err := tx.Create(part, payload, nil)
		if err != nil {
			tx.Abort()
			return nil, err
		}
		if i > 0 {
			parent := nodes[rng.Intn(len(nodes))]
			if err := tx.InsertRef(parent, o); err != nil {
				tx.Abort()
				return nil, err
			}
		}
		nodes = append(nodes, o)
	}
	if err := tx.Commit(); err != nil {
		return nil, err
	}
	return nodes, nil
}

// payload builds the unique padded payload for a node.
func (w *Workload) payload(part oid.PartitionID, ci, i int) []byte {
	s := fmt.Sprintf("p%02d-c%04d-n%04d", part, ci, i)
	if len(s) < w.Params.PayloadSize {
		pad := make([]byte, w.Params.PayloadSize-len(s))
		for j := range pad {
			pad[j] = '.'
		}
		s += string(pad)
	}
	return []byte(s)
}

// pickGlueTarget picks a node from a cluster other than self; the cluster
// is in a different partition with probability GlueFactor.
func (w *Workload) pickGlueTarget(clusters []cluster, self int, rng *rand.Rand) (oid.OID, bool) {
	selfPart := clusters[self].part
	crossPartition := rng.Float64() < w.Params.GlueFactor
	// Rejection-sample a suitable cluster; fall back to any other
	// cluster if the layout makes the wish impossible (e.g. a single
	// partition when a cross-partition edge was drawn).
	for attempt := 0; attempt < 64; attempt++ {
		ci := rng.Intn(len(clusters))
		if ci == self {
			continue
		}
		if crossPartition == (clusters[ci].part != selfPart) {
			return clusters[ci].nodes[rng.Intn(len(clusters[ci].nodes))], true
		}
	}
	for ci := range clusters {
		if ci != self {
			return clusters[ci].nodes[rng.Intn(len(clusters[ci].nodes))], true
		}
	}
	return oid.Nil, false
}

// BurnCPU spends d on the simulated uniprocessor; the harness charges
// the reorganizer's migration work here so it competes with transactions
// for the processor.
func (w *Workload) BurnCPU(d time.Duration) { w.burnCPU(d) }

// burnCPU spends d on the simulated CPU. Sub-millisecond costs are spun
// rather than slept: the Go timer's granularity would otherwise inflate
// a 50 µs charge by an order of magnitude and distort every CPU-bound
// shape in the evaluation. With the token bypassed (CPUTokens 0) the
// spin happens with no admission at all — real CPU, real parallelism.
func (w *Workload) burnCPU(d time.Duration) {
	if d <= 0 {
		return
	}
	if w.cpu != nil {
		if obs.Enabled() {
			start := time.Now()
			w.cpu <- struct{}{}
			obs.Observe(obs.CPUWait, time.Since(start))
		} else {
			w.cpu <- struct{}{}
		}
		defer func() { <-w.cpu }()
	}
	if d < time.Millisecond {
		for start := time.Now(); time.Since(start) < d; {
		}
	} else {
		time.Sleep(d)
	}
}

// Roots returns all persistent roots (for the consistency checker, the
// root-table objects are the true graph roots).
func (w *Workload) Roots() []oid.OID {
	return append([]oid.OID(nil), w.RootTable...)
}

// RootsOf returns the persistent roots whose clusters live in part.
func (w *Workload) RootsOf(part oid.PartitionID) []oid.OID {
	return append([]oid.OID(nil), w.rootsByPart[part]...)
}

// Driver runs MPL worker threads against the workload.
type Driver struct {
	w   *Workload
	rec *metrics.Recorder
	mpl int

	stop chan struct{}
	wg   sync.WaitGroup
}

// NewDriver creates a driver with the workload's MPL.
func NewDriver(w *Workload, rec *metrics.Recorder) *Driver {
	return &Driver{w: w, rec: rec, mpl: w.Params.MPL, stop: make(chan struct{})}
}

// Start launches the MPL threads. Threads are assigned home partitions
// uniformly (thread t → partition 1 + t mod NumPartitions).
func (d *Driver) Start() {
	for t := 0; t < d.mpl; t++ {
		home := oid.PartitionID(1 + t%d.w.Params.NumPartitions)
		d.wg.Add(1)
		go d.thread(t, home)
	}
}

// Stop halts all threads and waits for them to drain.
func (d *Driver) Stop() {
	close(d.stop)
	d.wg.Wait()
}

func (d *Driver) stopped() bool {
	select {
	case <-d.stop:
		return true
	default:
		return false
	}
}

// thread submits transactions one after another; a transaction aborted by
// a lock timeout is resubmitted until it commits, and its response time
// covers all attempts (see package comment).
func (d *Driver) thread(id int, home oid.PartitionID) {
	defer d.wg.Done()
	rng := rand.New(rand.NewSource(d.w.Params.Seed + 1000*int64(id+1)))
	// Each thread records through its own shard handle so the metrics
	// hot path never funnels all MPL threads through one mutex.
	rec := d.rec.Handle(id)
	// Walks start at the persistent roots of the home partition, which
	// live in the root partition — every entry into the data partition
	// goes through an external parent, as the system model requires.
	roots := d.w.rootsByPart[home]
	for !d.stopped() {
		start := time.Now()
		for !d.stopped() {
			committed, err := d.runWalk(rng, roots)
			if err != nil {
				return // database closed
			}
			if committed {
				rec.Record(time.Since(start))
				break
			}
			rec.RecordAbort()
		}
	}
}

// runWalk performs one random-walk transaction attempt. It returns
// (false, nil) when the transaction was aborted by a lock timeout and
// should be resubmitted.
func (d *Driver) runWalk(rng *rand.Rand, roots []oid.OID) (bool, error) {
	p := d.w.Params
	tx, err := d.w.DB.Begin()
	if err != nil {
		return false, err
	}
	cur := roots[rng.Intn(len(roots))]
	// visited is the transaction's "local memory": references it has
	// legitimately obtained by following the graph from a persistent
	// root. Reference churn may only install references from here — the
	// system model forbids conjuring an address from outside (§2).
	var visited []oid.OID
	traced := obs.Enabled()
	for step := 0; step < p.OpsPerTrans; step++ {
		var opStart time.Time
		if traced {
			opStart = time.Now()
		}
		mode := lock.Shared
		if rng.Float64() < p.UpdateProb {
			mode = lock.Exclusive
		}
		if err := tx.Lock(cur, mode); err != nil {
			tx.Abort()
			return false, nil
		}
		obj, err := tx.Read(cur)
		if err != nil {
			// The object vanished between choosing it and locking it
			// (it migrated). Resubmit from a root — exactly what a real
			// application would do on a broken traversal retry.
			tx.Abort()
			return false, nil
		}
		d.w.burnCPU(p.CPUPerOp)
		visited = append(visited, cur)
		if mode == lock.Exclusive {
			if rng.Float64() < p.RefChurnProb && len(obj.Refs) > 1 && len(visited) > 1 {
				// Retarget the glue edge (the last reference) to an
				// object from the transaction's local memory; glue
				// edges are redundant, so the reachable set is intact.
				victim := obj.Refs[len(obj.Refs)-1]
				target := visited[rng.Intn(len(visited)-1)]
				if victim != target && target != cur {
					if err := tx.DeleteRef(cur, victim); err != nil {
						tx.Abort()
						return false, nil
					}
					if err := tx.InsertRef(cur, target); err != nil {
						tx.Abort()
						return false, nil
					}
					obj.Refs[len(obj.Refs)-1] = target
				}
			} else if err := tx.UpdatePayload(cur, obj.Payload); err != nil {
				tx.Abort()
				return false, nil
			}
		}
		if traced {
			obs.Observe(obs.TxnOp, time.Since(opStart))
		}
		if len(obj.Refs) == 0 {
			break
		}
		cur = obj.Refs[rng.Intn(len(obj.Refs))]
	}
	if err := tx.Commit(); err != nil {
		return false, nil
	}
	return true, nil
}
