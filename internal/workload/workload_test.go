package workload

import (
	"sync"
	"testing"
	"time"

	"repro/internal/check"
	"repro/internal/db"
	"repro/internal/metrics"
	"repro/internal/oid"
)

func smallParams() Params {
	p := DefaultParams()
	p.NumPartitions = 3
	p.ObjectsPerPartition = 170 // two clusters of 85
	p.MPL = 6
	p.CPUPerOp = 0
	p.RefChurnProb = 0.1
	return p
}

func testDBConfig() db.Config {
	cfg := db.DefaultConfig()
	cfg.FlushLatency = 0
	cfg.LockTimeout = 100 * time.Millisecond
	return cfg
}

func buildSmall(t *testing.T) *Workload {
	t.Helper()
	w, err := Build(testDBConfig(), smallParams())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.DB.Close)
	return w
}

func TestBuildCounts(t *testing.T) {
	w := buildSmall(t)
	for pi := 1; pi <= 3; pi++ {
		st, err := w.DB.Store().PartitionStats(oid.PartitionID(pi))
		if err != nil {
			t.Fatal(err)
		}
		if st.Objects != 170 {
			t.Fatalf("partition %d has %d objects, want 170", pi, st.Objects)
		}
		if got := len(w.ClusterRoots[oid.PartitionID(pi)]); got != 2 {
			t.Fatalf("partition %d has %d cluster roots, want 2", pi, got)
		}
	}
	if len(w.RootTable) != 6 {
		t.Fatalf("root table has %d entries, want 6", len(w.RootTable))
	}
	st, _ := w.DB.Store().PartitionStats(RootPartition)
	if st.Objects != 6 {
		t.Fatalf("root partition has %d objects", st.Objects)
	}
}

func TestBuildUnevenClusterSizes(t *testing.T) {
	p := smallParams()
	p.ObjectsPerPartition = 100 // 85 + 15
	w, err := Build(testDBConfig(), p)
	if err != nil {
		t.Fatal(err)
	}
	defer w.DB.Close()
	st, _ := w.DB.Store().PartitionStats(1)
	if st.Objects != 100 {
		t.Fatalf("partition 1 has %d objects", st.Objects)
	}
	if len(w.ClusterRoots[1]) != 2 {
		t.Fatalf("cluster roots = %d", len(w.ClusterRoots[1]))
	}
}

func TestBuildIsConsistent(t *testing.T) {
	w := buildSmall(t)
	rep, err := check.Verify(w.DB, w.Roots())
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	// Everything is reachable: trees hang off cluster roots, which hang
	// off the root table.
	if len(rep.Unreachable) != 0 {
		t.Fatalf("%d unreachable objects in fresh workload", len(rep.Unreachable))
	}
	wantObjects := 3*170 + 6
	if rep.Objects != wantObjects {
		t.Fatalf("Objects = %d, want %d", rep.Objects, wantObjects)
	}
}

func TestERTSeededByRootTable(t *testing.T) {
	w := buildSmall(t)
	for pi := 1; pi <= 3; pi++ {
		e := w.DB.ERT(oid.PartitionID(pi))
		for _, root := range w.ClusterRoots[oid.PartitionID(pi)] {
			if !e.HasChild(root) {
				t.Fatalf("cluster root %v missing from partition %d ERT", root, pi)
			}
		}
	}
}

func TestGlueFactorShape(t *testing.T) {
	p := smallParams()
	p.NumPartitions = 4
	p.ObjectsPerPartition = 340
	p.GlueFactor = 0.5
	w, err := Build(testDBConfig(), p)
	if err != nil {
		t.Fatal(err)
	}
	defer w.DB.Close()
	// Count cross-partition references out of data partitions (excluding
	// the root table, which is all cross-partition by construction).
	cross, total := 0, 0
	for pi := 1; pi <= 4; pi++ {
		part := oid.PartitionID(pi)
		w.DB.Store().ForEach(part, func(o oid.OID, _ []byte) bool {
			obj, _ := w.DB.FuzzyRead(o)
			for _, c := range obj.Refs {
				total++
				if c.Partition() != part {
					cross++
				}
			}
			return true
		})
	}
	// Each node has one glue edge; tree edges are intra-partition. With
	// GlueFactor .5, about half the glue edges cross, i.e. about 25% of
	// all edges. Accept a generous band.
	frac := float64(cross) / float64(total)
	if frac < 0.15 || frac > 0.35 {
		t.Fatalf("cross-partition fraction = %.3f, want ≈ 0.25", frac)
	}
}

func TestDriverCommitsTransactions(t *testing.T) {
	w := buildSmall(t)
	rec := metrics.NewRecorder()
	d := NewDriver(w, rec)
	rec.StartWindow()
	d.Start()
	time.Sleep(300 * time.Millisecond)
	d.Stop()
	s := rec.Stop()
	if s.Commits == 0 {
		t.Fatal("no transactions committed")
	}
	if s.Throughput <= 0 || s.Mean <= 0 {
		t.Fatalf("summary = %+v", s)
	}
	// The graph must still be fully consistent after churn.
	rep, err := check.Verify(w.DB, w.Roots())
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	if len(rep.Unreachable) != 0 {
		t.Fatalf("churn made %d objects unreachable", len(rep.Unreachable))
	}
}

func TestDriverWithCPUToken(t *testing.T) {
	p := smallParams()
	p.CPUTokens = 1 // pin: the uniprocessor bound below assumes capacity 1 even under REORG_MODE=hardware
	p.CPUPerOp = 100 * time.Microsecond
	p.MPL = 4
	w, err := Build(testDBConfig(), p)
	if err != nil {
		t.Fatal(err)
	}
	defer w.DB.Close()
	rec := metrics.NewRecorder()
	d := NewDriver(w, rec)
	rec.StartWindow()
	d.Start()
	time.Sleep(200 * time.Millisecond)
	d.Stop()
	s := rec.Stop()
	if s.Commits == 0 {
		t.Fatal("no commits with CPU token")
	}
	// 8 ops × 100µs serialized CPU bounds throughput at ~1250 tps.
	if s.Throughput > 1600 {
		t.Fatalf("throughput %.0f exceeds uniprocessor bound", s.Throughput)
	}
}

// timedBurn runs n concurrent burnCPU(d) calls against a semaphore of
// the given capacity (0 = bypass) and returns the wall-clock time.
func timedBurn(tokens, n int, d time.Duration) time.Duration {
	w := &Workload{}
	if tokens > 0 {
		w.cpu = make(chan struct{}, tokens)
	}
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.burnCPU(d)
		}()
	}
	wg.Wait()
	return time.Since(start)
}

func TestCPUTokenCapacityOneSerializes(t *testing.T) {
	// Four 20 ms burns through a capacity-1 token must take ≥ 80 ms.
	const d = 20 * time.Millisecond
	if got := timedBurn(1, 4, d); got < 4*d {
		t.Fatalf("capacity-1 burns finished in %v, want ≥ %v (token failed to serialize)", got, 4*d)
	}
}

func TestCPUTokenCapacityNAdmitsN(t *testing.T) {
	// With capacity 4, the four burns overlap: well under the serialized
	// 80 ms. The bound is generous (3×d) to tolerate scheduler noise —
	// the sleeps themselves need no spare cores to overlap.
	const d = 20 * time.Millisecond
	if got := timedBurn(4, 4, d); got >= 3*d {
		t.Fatalf("capacity-4 burns took %v, want < %v (token over-serialized)", got, 3*d)
	}
}

func TestCPUTokenBypassAdmitsAll(t *testing.T) {
	const d = 20 * time.Millisecond
	if got := timedBurn(0, 8, d); got >= 3*d {
		t.Fatalf("bypassed burns took %v, want < %v", got, 3*d)
	}
}

func TestDefaultParamsFollowMode(t *testing.T) {
	t.Setenv("REORG_MODE", "")
	if got := DefaultParams().CPUTokens; got != 1 {
		t.Fatalf("fidelity CPUTokens = %d, want 1", got)
	}
	t.Setenv("REORG_MODE", "hardware")
	if got := DefaultParams().CPUTokens; got != 0 {
		t.Fatalf("hardware CPUTokens = %d, want 0 (bypass)", got)
	}
}

func TestCPUTokenCapacityReported(t *testing.T) {
	p := smallParams()
	p.CPUTokens = 3
	w, err := Build(testDBConfig(), p)
	if err != nil {
		t.Fatal(err)
	}
	defer w.DB.Close()
	if got := w.CPUTokenCapacity(); got != 3 {
		t.Fatalf("CPUTokenCapacity = %d, want 3", got)
	}
	p.CPUTokens = 0
	w2, err := Build(testDBConfig(), p)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.DB.Close()
	if got := w2.CPUTokenCapacity(); got != 0 {
		t.Fatalf("bypassed CPUTokenCapacity = %d, want 0", got)
	}
}

func TestRootsReturnsCopy(t *testing.T) {
	w := buildSmall(t)
	r := w.Roots()
	r[0] = oid.Nil
	if w.RootTable[0] == oid.Nil {
		t.Fatal("Roots aliases RootTable")
	}
}

func TestRootsOf(t *testing.T) {
	w := buildSmall(t)
	seen := map[oid.OID]bool{}
	for pi := 1; pi <= 3; pi++ {
		roots := w.RootsOf(oid.PartitionID(pi))
		if len(roots) != 2 {
			t.Fatalf("partition %d has %d persistent roots, want 2", pi, len(roots))
		}
		for _, r := range roots {
			if r.Partition() != RootPartition {
				t.Fatalf("persistent root %v not in root partition", r)
			}
			if seen[r] {
				t.Fatalf("root %v assigned to two partitions", r)
			}
			seen[r] = true
			// The root must reference a cluster root of that partition.
			obj, err := w.DB.FuzzyRead(r)
			if err != nil || len(obj.Refs) != 1 {
				t.Fatalf("root %v: %v", r, err)
			}
			if obj.Refs[0].Partition() != oid.PartitionID(pi) {
				t.Fatalf("root %v references partition %d", r, obj.Refs[0].Partition())
			}
		}
	}
}
