package client

import (
	"errors"
	"math/rand"
	"testing"
	"time"
)

// newForTest builds a Client without dialing anything.
func newForTest(cfg Config) *Client {
	cfg.defaults()
	return &Client{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

func TestShedErrorUnwrap(t *testing.T) {
	var err error = &ShedError{After: 20 * time.Millisecond, Msg: "queue full"}
	if !errors.Is(err, ErrShed) {
		t.Fatal("ShedError must unwrap to ErrShed")
	}
	var shed *ShedError
	if !errors.As(err, &shed) || shed.After != 20*time.Millisecond {
		t.Fatalf("errors.As lost the hint: %v", err)
	}
}

func TestConfigDefaults(t *testing.T) {
	var c Config
	c.defaults()
	if c.PoolSize != 4 || c.MaxRetries != 4 || c.Seed != 1 {
		t.Fatalf("unexpected defaults: %+v", c)
	}
	if c.BackoffBase != 2*time.Millisecond || c.BackoffMax != 250*time.Millisecond {
		t.Fatalf("unexpected backoff defaults: %+v", c)
	}
	// Explicit values survive.
	c = Config{PoolSize: 9, MaxRetries: 1, Seed: -3}
	c.defaults()
	if c.PoolSize != 9 || c.MaxRetries != 1 || c.Seed != -3 {
		t.Fatalf("defaults clobbered explicit values: %+v", c)
	}
}

func TestBackoffCapAndJitterBounds(t *testing.T) {
	cl := newForTest(Config{BackoffBase: time.Millisecond, BackoffMax: 4 * time.Millisecond, Seed: 42})
	// attempt 10 would be 1ms<<10 ≈ 1s without the cap; with ±50%
	// jitter the sleep stays within [2ms, 6ms] plus scheduling slack.
	start := time.Now()
	cl.sleepBackoff(10, 0)
	if got := time.Since(start); got > 100*time.Millisecond {
		t.Fatalf("backoff cap not applied: slept %s", got)
	}
	// The hint is additive: a shed with RETRY_AFTER waits at least it.
	start = time.Now()
	cl.sleepBackoff(0, 30*time.Millisecond)
	if got := time.Since(start); got < 30*time.Millisecond {
		t.Fatalf("server hint ignored: slept %s", got)
	}
}

func TestDeadlinePropagation(t *testing.T) {
	cl := newForTest(Config{RequestTimeout: 1500 * time.Millisecond})
	if got := cl.deadlineMs(); got != 1500 {
		t.Fatalf("deadlineMs = %d, want 1500", got)
	}
}
