// Package client is the wire-protocol client: a connection pool over
// one server address, stateless request retry with exponential backoff
// plus seeded jitter, deadline propagation, and a transaction handle
// that pins one pooled connection for its lifetime (the server drives
// one db.Txn per connection, so a transaction and a connection are
// one-to-one while it is open).
//
// Retry discipline. Only stateless requests (Ping, Roots, Begin) are
// retried automatically: they execute no transactional work, so a
// duplicate is harmless, and the request ID is reused across attempts
// so both sides can attribute the retries. Transactional ops are NOT
// retried — a connection failure mid-transaction loses the server-side
// transaction (the server aborts it as an orphan), and the caller
// resubmits the whole transaction exactly like the in-process driver
// resubmits on a lock-timeout abort. A commit whose response was lost
// returns ErrCommitUnknown: the commit may or may not have applied, and
// only an application-level read can tell.
//
// RETRY_AFTER handling. A shed response (or handshake) carries the
// server's backoff hint; the retry sleeps hint plus jitter. Begin does
// not sleep — it surfaces *ShedError so load drivers can count sheds
// and restart their latency clock, which is what keeps the measured
// p99 covering admitted requests.
package client

import (
	"bufio"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/object"
	"repro/internal/oid"
	"repro/internal/wire"
)

// Client errors.
var (
	// ErrShed reports a request shed by admission control; errors.Is
	// matches it against *ShedError.
	ErrShed = errors.New("client: shed by server (retry after)")
	// ErrDraining reports a server refusing new work for shutdown.
	ErrDraining = errors.New("client: server draining")
	// ErrRejected reports a handshake rejection (version mismatch etc.).
	ErrRejected = errors.New("client: handshake rejected")
	// ErrAborted reports a transaction aborted server-side (lock
	// timeout, deadline, op failure); resubmit the transaction.
	ErrAborted = errors.New("client: transaction aborted by server")
	// ErrCommitUnknown reports a commit whose outcome was lost with the
	// connection: it may or may not have applied.
	ErrCommitUnknown = errors.New("client: commit outcome unknown (connection lost)")
	// ErrTxnDone reports use of a finished transaction handle.
	ErrTxnDone = errors.New("client: transaction already finished")
	// ErrClosed reports use of a closed client.
	ErrClosed = errors.New("client: closed")
)

// ShedError carries the server's RETRY_AFTER hint.
type ShedError struct {
	After time.Duration
	Msg   string
}

func (e *ShedError) Error() string {
	return fmt.Sprintf("client: shed by server: %s (retry after %s)", e.Msg, e.After)
}

func (e *ShedError) Unwrap() error { return ErrShed }

// Config configures a Client.
type Config struct {
	// Addr is the server address ("host:port"). Required.
	Addr string
	// Tenant names this client's admission-control tenant.
	Tenant string
	// PoolSize caps pooled idle connections (default 4). More
	// connections are dialed on demand; extras are closed on release.
	PoolSize int
	// DialTimeout bounds connection establishment (default 2s).
	DialTimeout time.Duration
	// RequestTimeout is the per-request deadline, propagated to the
	// server as DeadlineMs and enforced locally as a socket deadline
	// with slack (default 5s).
	RequestTimeout time.Duration
	// MaxRetries bounds automatic retries of stateless requests
	// (default 4).
	MaxRetries int
	// BackoffBase and BackoffMax shape the exponential backoff between
	// retries (defaults 2ms and 250ms); jitter of ±50% is applied from
	// the seeded RNG.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Seed seeds the jitter RNG (default 1), keeping retry schedules
	// reproducible under the test harnesses.
	Seed int64
}

func (c *Config) defaults() {
	if c.PoolSize <= 0 {
		c.PoolSize = 4
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 2 * time.Second
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 5 * time.Second
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 4
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 2 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 250 * time.Millisecond
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// conn is one established, handshaken connection.
type conn struct {
	c  net.Conn
	br *bufio.Reader
	bw *bufio.Writer
}

func (cn *conn) close() { cn.c.Close() }

// roundTrip sends one request and reads one response, under deadline.
func (cn *conn) roundTrip(req wire.Request, timeout time.Duration) (wire.Response, error) {
	payload, err := wire.EncodeRequest(req)
	if err != nil {
		return wire.Response{}, err
	}
	// Slack past the propagated deadline: the server answers
	// StatusDeadline itself when the budget expires, so the socket
	// deadline only catches a dead peer.
	cn.c.SetDeadline(time.Now().Add(timeout + 2*time.Second))
	if err := wire.WriteFrame(cn.bw, payload); err != nil {
		return wire.Response{}, err
	}
	if err := cn.bw.Flush(); err != nil {
		return wire.Response{}, err
	}
	frame, err := wire.ReadFrame(cn.br)
	if err != nil {
		return wire.Response{}, err
	}
	resp, err := wire.DecodeResponse(frame)
	if err != nil {
		return wire.Response{}, err
	}
	if resp.ID != req.ID {
		return wire.Response{}, fmt.Errorf("client: response ID %d for request %d (stream desync)", resp.ID, req.ID)
	}
	return resp, nil
}

// Client is a pooled wire-protocol client for one server.
type Client struct {
	cfg Config

	mu     sync.Mutex
	idle   []*conn
	rng    *rand.Rand
	closed bool

	nextID atomic.Uint64

	// Sheds counts RETRY_AFTER answers observed (handshake + Begin).
	sheds atomic.Uint64
	// Retries counts automatic stateless-request retries.
	retries atomic.Uint64
}

// Dial creates a client and validates the address by establishing (and
// pooling) one connection.
func Dial(cfg Config) (*Client, error) {
	if cfg.Addr == "" {
		return nil, errors.New("client: Config.Addr is required")
	}
	cfg.defaults()
	c := &Client{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	cn, err := c.dialConn()
	if err != nil {
		return nil, err
	}
	c.put(cn)
	return c, nil
}

// Sheds returns how many RETRY_AFTER answers this client has seen.
func (c *Client) Sheds() uint64 { return c.sheds.Load() }

// Retries returns how many automatic retries this client has issued.
func (c *Client) Retries() uint64 { return c.retries.Load() }

// dialConn establishes and handshakes one connection.
func (c *Client) dialConn() (*conn, error) {
	nc, err := net.DialTimeout("tcp", c.cfg.Addr, c.cfg.DialTimeout)
	if err != nil {
		return nil, err
	}
	cn := &conn{c: nc, br: bufio.NewReader(nc), bw: bufio.NewWriter(nc)}
	nc.SetDeadline(time.Now().Add(c.cfg.DialTimeout + c.cfg.RequestTimeout))
	if err := wire.WriteFrame(cn.bw, wire.EncodeHello(wire.Hello{
		Magic: wire.Magic, Version: wire.Version, Tenant: c.cfg.Tenant,
	})); err != nil {
		nc.Close()
		return nil, err
	}
	if err := cn.bw.Flush(); err != nil {
		nc.Close()
		return nil, err
	}
	frame, err := wire.ReadFrame(cn.br)
	if err != nil {
		nc.Close()
		return nil, err
	}
	wl, err := wire.DecodeWelcome(frame)
	if err != nil {
		nc.Close()
		return nil, err
	}
	switch wl.Status {
	case wire.StatusOK:
		nc.SetDeadline(time.Time{})
		return cn, nil
	case wire.StatusRetryAfter:
		nc.Close()
		c.sheds.Add(1)
		return nil, &ShedError{After: time.Duration(wl.RetryAfterMs) * time.Millisecond, Msg: wl.Msg}
	case wire.StatusDraining:
		nc.Close()
		return nil, ErrDraining
	default:
		nc.Close()
		return nil, fmt.Errorf("%w: %s", ErrRejected, wl.Msg)
	}
}

// get returns a pooled or freshly dialed connection.
func (c *Client) get() (*conn, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	if n := len(c.idle); n > 0 {
		cn := c.idle[n-1]
		c.idle = c.idle[:n-1]
		c.mu.Unlock()
		return cn, nil
	}
	c.mu.Unlock()
	return c.dialConn()
}

// put returns a healthy connection to the pool.
func (c *Client) put(cn *conn) {
	c.mu.Lock()
	if !c.closed && len(c.idle) < c.cfg.PoolSize {
		c.idle = append(c.idle, cn)
		c.mu.Unlock()
		return
	}
	c.mu.Unlock()
	cn.close()
}

// Close closes the client and its pooled connections. Transactions
// still holding connections fail on next use.
func (c *Client) Close() {
	c.mu.Lock()
	c.closed = true
	idle := c.idle
	c.idle = nil
	c.mu.Unlock()
	for _, cn := range idle {
		cn.close()
	}
}

// id assigns the next request ID.
func (c *Client) id() uint64 { return c.nextID.Add(1) }

// sleepBackoff sleeps the retry backoff for attempt (0-based) plus the
// server hint, with ±50% seeded jitter.
func (c *Client) sleepBackoff(attempt int, hint time.Duration) {
	d := c.cfg.BackoffBase << attempt
	if d > c.cfg.BackoffMax {
		d = c.cfg.BackoffMax
	}
	c.mu.Lock()
	jitter := 0.5 + c.rng.Float64()
	c.mu.Unlock()
	time.Sleep(hint + time.Duration(float64(d)*jitter))
}

// deadlineMs is the propagated per-request deadline field.
func (c *Client) deadlineMs() uint32 {
	return uint32(c.cfg.RequestTimeout / time.Millisecond)
}

// do executes one stateless request with automatic retry: connection
// failures discard the connection and retry with backoff (the request
// ID is reused, so the server sees the same logical request), and
// RETRY_AFTER responses sleep the hint. Used for Ping/Roots; Begin has
// its own path so callers can observe sheds.
func (c *Client) do(req wire.Request) (wire.Response, error) {
	var lastErr error
	for attempt := 0; attempt <= c.cfg.MaxRetries; attempt++ {
		if attempt > 0 {
			c.retries.Add(1)
		}
		cn, err := c.get()
		if err != nil {
			var shed *ShedError
			if errors.As(err, &shed) {
				lastErr = err
				c.sleepBackoff(attempt, shed.After)
				continue
			}
			if errors.Is(err, ErrClosed) || errors.Is(err, ErrDraining) || errors.Is(err, ErrRejected) {
				return wire.Response{}, err
			}
			lastErr = err
			c.sleepBackoff(attempt, 0)
			continue
		}
		resp, err := cn.roundTrip(req, c.cfg.RequestTimeout)
		if err != nil {
			cn.close()
			lastErr = err
			c.sleepBackoff(attempt, 0)
			continue
		}
		switch resp.Status {
		case wire.StatusRetryAfter:
			c.put(cn)
			c.sheds.Add(1)
			hint := time.Duration(resp.RetryAfterMs) * time.Millisecond
			lastErr = &ShedError{After: hint, Msg: resp.Msg}
			c.sleepBackoff(attempt, hint)
			continue
		default:
			c.put(cn)
			return resp, nil
		}
	}
	return wire.Response{}, fmt.Errorf("client: %s gave up after %d retries: %w", req.Op, c.cfg.MaxRetries, lastErr)
}

// Ping round-trips a no-op request.
func (c *Client) Ping() error {
	resp, err := c.do(wire.Request{ID: c.id(), Op: wire.OpPing, DeadlineMs: c.deadlineMs()})
	if err != nil {
		return err
	}
	if resp.Status != wire.StatusOK {
		return fmt.Errorf("client: ping: %s: %s", resp.Status, resp.Msg)
	}
	return nil
}

// Roots resolves a named root set from the server's catalog.
func (c *Client) Roots(name string) ([]oid.OID, error) {
	resp, err := c.do(wire.Request{ID: c.id(), Op: wire.OpRoots, Name: name, DeadlineMs: c.deadlineMs()})
	if err != nil {
		return nil, err
	}
	if resp.Status != wire.StatusOK {
		return nil, fmt.Errorf("client: roots %q: %s: %s", name, resp.Status, resp.Msg)
	}
	return resp.Refs, nil
}

// Txn is an open server-side transaction pinned to one connection.
type Txn struct {
	c    *Client
	cn   *conn
	done bool
}

// Begin opens a transaction. A shed Begin returns *ShedError without
// sleeping — load drivers count it and restart their latency clock;
// BeginRetry is the convenience loop for callers that just want a
// transaction.
func (c *Client) Begin() (*Txn, error) {
	cn, err := c.get()
	if err != nil {
		return nil, err
	}
	resp, err := cn.roundTrip(wire.Request{ID: c.id(), Op: wire.OpBegin, DeadlineMs: c.deadlineMs()}, c.cfg.RequestTimeout)
	if err != nil {
		cn.close()
		return nil, err
	}
	switch resp.Status {
	case wire.StatusOK:
		return &Txn{c: c, cn: cn}, nil
	case wire.StatusRetryAfter:
		c.put(cn)
		c.sheds.Add(1)
		return nil, &ShedError{After: time.Duration(resp.RetryAfterMs) * time.Millisecond, Msg: resp.Msg}
	case wire.StatusDraining:
		c.put(cn)
		return nil, ErrDraining
	default:
		c.put(cn)
		return nil, fmt.Errorf("client: begin: %s: %s", resp.Status, resp.Msg)
	}
}

// BeginRetry is Begin with the shed backoff applied, up to MaxRetries.
func (c *Client) BeginRetry() (*Txn, error) {
	var lastErr error
	for attempt := 0; attempt <= c.cfg.MaxRetries; attempt++ {
		tx, err := c.Begin()
		if err == nil {
			return tx, nil
		}
		lastErr = err
		var shed *ShedError
		switch {
		case errors.As(err, &shed):
			c.sleepBackoff(attempt, shed.After)
		case errors.Is(err, ErrDraining), errors.Is(err, ErrClosed), errors.Is(err, ErrRejected):
			return nil, err
		default:
			c.sleepBackoff(attempt, 0)
		}
	}
	return nil, fmt.Errorf("client: begin gave up after %d retries: %w", c.cfg.MaxRetries, lastErr)
}

// finish releases the transaction's connection; broken tells whether
// the connection is still protocol-clean enough to pool.
func (t *Txn) finish(broken bool) {
	t.done = true
	if broken {
		t.cn.close()
	} else {
		t.c.put(t.cn)
	}
	t.cn = nil
}

// op runs one transactional request. No automatic retry (see the
// package comment); any failure ends the transaction.
func (t *Txn) op(req wire.Request) (wire.Response, error) {
	if t.done {
		return wire.Response{}, ErrTxnDone
	}
	req.ID = t.c.id()
	req.DeadlineMs = t.c.deadlineMs()
	resp, err := t.cn.roundTrip(req, t.c.cfg.RequestTimeout)
	if err != nil {
		// Connection lost mid-transaction: the server aborts the orphan.
		t.finish(true)
		return wire.Response{}, err
	}
	if resp.Status != wire.StatusOK {
		// The server aborted the transaction (op failure, deadline) or
		// rejected the request; either way this handle is finished. The
		// connection itself is still in protocol sync — pool it.
		t.finish(false)
		return resp, fmt.Errorf("%w: %s: %s", ErrAborted, resp.Status, resp.Msg)
	}
	return resp, nil
}

// Read locks (shared, or exclusive when excl) and reads one object.
func (t *Txn) Read(o oid.OID, excl bool) (object.Object, error) {
	var mode uint8
	if excl {
		mode = 1
	}
	resp, err := t.op(wire.Request{Op: wire.OpRead, OID: o, Mode: mode})
	if err != nil {
		return object.Object{}, err
	}
	return object.Object{Payload: resp.Payload, Refs: resp.Refs}, nil
}

// Create creates an object in part.
func (t *Txn) Create(part oid.PartitionID, payload []byte, refs []oid.OID) (oid.OID, error) {
	resp, err := t.op(wire.Request{Op: wire.OpCreate, Part: part, Payload: payload, Refs: refs})
	if err != nil {
		return oid.Nil, err
	}
	return resp.OID, nil
}

// Update rewrites an object's payload.
func (t *Txn) Update(o oid.OID, payload []byte) error {
	_, err := t.op(wire.Request{Op: wire.OpUpdate, OID: o, Payload: payload})
	return err
}

// InsertRef adds a reference o → child.
func (t *Txn) InsertRef(o, child oid.OID) error {
	_, err := t.op(wire.Request{Op: wire.OpInsertRef, OID: o, OID2: child})
	return err
}

// DeleteRef removes one reference o → child.
func (t *Txn) DeleteRef(o, child oid.OID) error {
	_, err := t.op(wire.Request{Op: wire.OpDeleteRef, OID: o, OID2: child})
	return err
}

// RetargetRef swings one reference o → from to o → to.
func (t *Txn) RetargetRef(o, from, to oid.OID) error {
	_, err := t.op(wire.Request{Op: wire.OpRetargetRef, OID: o, OID2: from, OID3: to})
	return err
}

// Delete removes an object.
func (t *Txn) Delete(o oid.OID) error {
	_, err := t.op(wire.Request{Op: wire.OpDelete, OID: o})
	return err
}

// Batch pipelines several ops in one frame (server executes in order,
// stopping at the first failure). Sub-request IDs are assigned here.
func (t *Txn) Batch(subs []wire.Request) ([]wire.Response, error) {
	if t.done {
		return nil, ErrTxnDone
	}
	for i := range subs {
		subs[i].ID = t.c.id()
	}
	// Sub-responses are returned alongside an abort error so callers can
	// see which op failed and which were never executed.
	resp, err := t.op(wire.Request{Op: wire.OpBatch, Sub: subs})
	return resp.Sub, err
}

// Commit commits the transaction. A lost response returns
// ErrCommitUnknown: the commit may have applied.
func (t *Txn) Commit() error {
	if t.done {
		return ErrTxnDone
	}
	req := wire.Request{ID: t.c.id(), Op: wire.OpCommit, DeadlineMs: t.c.deadlineMs()}
	resp, err := t.cn.roundTrip(req, t.c.cfg.RequestTimeout)
	if err != nil {
		t.finish(true)
		return fmt.Errorf("%w: %v", ErrCommitUnknown, err)
	}
	t.finish(false)
	if resp.Status != wire.StatusOK {
		return fmt.Errorf("%w: %s: %s", ErrAborted, resp.Status, resp.Msg)
	}
	return nil
}

// Abort rolls the transaction back. Safe on a finished handle.
func (t *Txn) Abort() error {
	if t.done {
		return nil
	}
	req := wire.Request{ID: t.c.id(), Op: wire.OpAbort, DeadlineMs: t.c.deadlineMs()}
	resp, err := t.cn.roundTrip(req, t.c.cfg.RequestTimeout)
	if err != nil {
		t.finish(true)
		return nil // the server aborts the orphan anyway
	}
	t.finish(false)
	if resp.Status != wire.StatusOK {
		return fmt.Errorf("client: abort: %s: %s", resp.Status, resp.Msg)
	}
	return nil
}
