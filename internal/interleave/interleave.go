// Package interleave is a bounded, process-wide ring buffer recording
// the interleaving of the four low-level events that surround the
// buffer pool's eviction window and the segment write path: WAL
// appends, page applies, evictions, and flushes.
//
// The rare torture-sweep failures are load-sensitive — a crash landing
// inside the pool/evict or segment/write fault windows only violates an
// invariant under one particular ordering of appends, applies and
// flushes, and by the time the checker reports the violation that
// ordering is gone. The ring keeps the tail of it: each run of the
// torture sweep installs a fresh ring, and on failure the sweep dumps
// the captured tail next to the deterministic replay command, so the
// interleaving that produced the violation travels with the recipe to
// reproduce it.
//
// Like internal/fault, the registry is process-wide behind one atomic
// pointer: with no ring installed, Note is a single atomic load, so the
// emit sites can sit on the WAL append and page flush paths
// permanently. Unlike fault, nothing here affects execution — the ring
// only observes.
package interleave

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"repro/internal/oid"
)

// Kind classifies one traced event.
type Kind uint8

// The traced event kinds, in rough pipeline order: a WAL record is
// appended, its mutation is applied to a pooled page, the page is
// chosen for eviction, and its content is flushed to the segment file.
const (
	Append Kind = iota // WAL record assigned an LSN
	Apply              // pooled page dirtied by a mutation
	Evict              // eviction victim chosen (pool/evict window)
	Flush              // page written to its segment file (segment/write)
)

func (k Kind) String() string {
	switch k {
	case Append:
		return "append"
	case Apply:
		return "apply"
	case Evict:
		return "evict"
	case Flush:
		return "flush"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is one traced occurrence. Seq is a per-ring monotone sequence
// number, so gaps in a dumped tail reveal how much history the ring
// capacity discarded.
type Event struct {
	Seq  uint64          `json:"seq"`
	Kind Kind            `json:"kind"`
	Part oid.PartitionID `json:"part"`
	Page int             `json:"page"`
	LSN  uint64          `json:"lsn"`
}

func (e Event) String() string {
	return fmt.Sprintf("#%-6d %-6s part=%d page=%d lsn=%d", e.Seq, e.Kind, e.Part, e.Page, e.LSN)
}

// DefaultCap is the ring capacity the torture sweep installs: enough to
// span several eviction/flush cycles either side of a crash without
// flooding a failure report.
const DefaultCap = 256

// Ring is a fixed-capacity event buffer; writers overwrite the oldest
// entry once full. All methods are safe for concurrent use.
type Ring struct {
	mu  sync.Mutex
	buf []Event
	seq uint64 // events ever noted; buf holds the last min(seq, cap)
}

// NewRing returns an empty ring holding the last capacity events
// (DefaultCap if capacity <= 0).
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = DefaultCap
	}
	return &Ring{buf: make([]Event, 0, capacity)}
}

func (r *Ring) note(e Event) {
	r.mu.Lock()
	e.Seq = r.seq
	r.seq++
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
	} else {
		r.buf[e.Seq%uint64(cap(r.buf))] = e
	}
	r.mu.Unlock()
}

// Len returns how many events the ring currently holds.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.buf)
}

// Noted returns how many events have ever been noted (≥ Len once the
// ring has wrapped).
func (r *Ring) Noted() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seq
}

// Events returns the retained tail, oldest first.
func (r *Ring) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, len(r.buf))
	if len(r.buf) < cap(r.buf) {
		return append(out, r.buf...)
	}
	start := r.seq % uint64(cap(r.buf))
	out = append(out, r.buf[start:]...)
	return append(out, r.buf[:start]...)
}

// Dump writes the retained tail to w, one event per line with the
// given prefix, preceded by a header noting how much history the
// capacity discarded.
func (r *Ring) Dump(w io.Writer, prefix string) {
	events := r.Events()
	r.mu.Lock()
	total := r.seq
	r.mu.Unlock()
	if len(events) == 0 {
		fmt.Fprintf(w, "%sinterleave: no events recorded\n", prefix)
		return
	}
	fmt.Fprintf(w, "%sinterleave tail: last %d of %d events (append|apply|evict|flush)\n",
		prefix, len(events), total)
	for _, e := range events {
		fmt.Fprintf(w, "%s  %s\n", prefix, e)
	}
}

// global is the process-wide active ring; nil when disabled.
var global atomic.Pointer[Ring]

// Install makes r the process-wide ring and returns a restore function
// reinstating the previous one (usually nil). Like fault.Install,
// installers must be serialized against each other.
func Install(r *Ring) (restore func()) {
	prev := global.Swap(r)
	return func() { global.Store(prev) }
}

// Active returns the installed ring, or nil.
func Active() *Ring { return global.Load() }

// Note records one event on the installed ring. With no ring installed
// it is a single atomic load.
func Note(k Kind, part oid.PartitionID, page int, lsn uint64) {
	r := global.Load()
	if r == nil {
		return
	}
	r.note(Event{Kind: k, Part: part, Page: page, LSN: lsn})
}
