package interleave

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

// TestRingBoundedAndOrdered: the ring keeps exactly the last cap events
// oldest-first, with sequence numbers revealing the discarded prefix.
func TestRingBoundedAndOrdered(t *testing.T) {
	r := NewRing(8)
	for i := 0; i < 20; i++ {
		r.note(Event{Kind: Kind(uint8(i) % 4), Part: 1, Page: i, LSN: uint64(i)})
	}
	if r.Len() != 8 {
		t.Fatalf("ring holds %d events, want 8", r.Len())
	}
	if r.Noted() != 20 {
		t.Fatalf("ring noted %d events, want 20", r.Noted())
	}
	events := r.Events()
	for i, e := range events {
		if want := uint64(12 + i); e.Seq != want {
			t.Fatalf("event %d has seq %d, want %d (tail of 20 with cap 8)", i, e.Seq, want)
		}
		if e.Page != int(e.Seq) || e.LSN != e.Seq {
			t.Fatalf("event payload scrambled: %+v", e)
		}
	}
}

// TestRingPartialFill: before wrapping, Events returns everything noted.
func TestRingPartialFill(t *testing.T) {
	r := NewRing(8)
	for i := 0; i < 3; i++ {
		r.note(Event{Kind: Flush, Part: 2, Page: i})
	}
	events := r.Events()
	if len(events) != 3 {
		t.Fatalf("got %d events, want 3", len(events))
	}
	for i, e := range events {
		if e.Seq != uint64(i) {
			t.Fatalf("event %d has seq %d", i, e.Seq)
		}
	}
}

// TestNoteDisabled: with no ring installed, Note is a no-op (and must
// not panic on the nil pointer).
func TestNoteDisabled(t *testing.T) {
	if Active() != nil {
		t.Fatal("a ring is installed at test start")
	}
	Note(Append, 1, 1, 1)
}

// TestInstallRestore: Note lands on the installed ring; restore
// reinstates the previous one.
func TestInstallRestore(t *testing.T) {
	r := NewRing(4)
	restore := Install(r)
	Note(Evict, 3, 7, 42)
	restore()
	Note(Append, 1, 1, 1) // after restore: dropped
	events := r.Events()
	if len(events) != 1 {
		t.Fatalf("ring holds %d events, want 1", len(events))
	}
	e := events[0]
	if e.Kind != Evict || e.Part != 3 || e.Page != 7 || e.LSN != 42 {
		t.Fatalf("wrong event captured: %+v", e)
	}
}

// TestDumpFormat: the dump names every kind and reports the discarded
// history.
func TestDumpFormat(t *testing.T) {
	r := NewRing(2)
	for _, k := range []Kind{Append, Apply, Evict, Flush} {
		r.note(Event{Kind: k, Part: 1})
	}
	var buf bytes.Buffer
	r.Dump(&buf, ">> ")
	out := buf.String()
	if !strings.Contains(out, "last 2 of 4 events") {
		t.Fatalf("dump header missing discard count:\n%s", out)
	}
	for _, want := range []string{"evict", "flush"} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump missing retained %q event:\n%s", want, out)
		}
	}
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if !strings.HasPrefix(line, ">> ") {
			t.Fatalf("dump line missing prefix: %q", line)
		}
	}

	var empty bytes.Buffer
	NewRing(2).Dump(&empty, "")
	if !strings.Contains(empty.String(), "no events") {
		t.Fatalf("empty dump: %q", empty.String())
	}
}

// TestRingConcurrent is the -race cell: concurrent writers against a
// reader draining Events. Sequence numbers must stay unique.
func TestRingConcurrent(t *testing.T) {
	r := NewRing(64)
	restore := Install(r)
	defer restore()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				Note(Kind(uint8(i)%4), 1, g, uint64(i))
			}
		}(g)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			r.Events()
			r.Len()
		}
	}()
	wg.Wait()
	<-done
	if r.Noted() != 2000 {
		t.Fatalf("noted %d events, want 2000", r.Noted())
	}
	seen := make(map[uint64]bool)
	for _, e := range r.Events() {
		if seen[e.Seq] {
			t.Fatalf("duplicate seq %d", e.Seq)
		}
		seen[e.Seq] = true
	}
}
