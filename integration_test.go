package repro

import (
	"errors"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/check"
	"repro/internal/db"
	"repro/internal/metrics"
	"repro/internal/recovery"
	"repro/internal/reorg"
	"repro/internal/workload"
)

// TestEndToEndDurableReorgCrashRecoverResume is the kitchen-sink
// integration test: a file-backed database under concurrent load starts
// an on-line reorganization, crashes halfway through it, recovers from
// nothing but the on-disk checkpoint and WAL segments, resumes the
// reorganization from its last state checkpoint, and ends fully
// consistent with every object migrated.
func TestEndToEndDurableReorgCrashRecoverResume(t *testing.T) {
	if testing.Short() {
		t.Skip("long integration test")
	}
	dir := t.TempDir()
	cfg := db.DefaultConfig()
	cfg.FlushLatency = 0 // the real fsync is the device latency here
	cfg.LockTimeout = 200 * time.Millisecond
	cfg.LogDir = filepath.Join(dir, "wal")
	ckptPath := filepath.Join(dir, "checkpoint")

	params := workload.DefaultParams()
	params.NumPartitions = 3
	params.ObjectsPerPartition = 170
	params.MPL = 6
	params.CPUPerOp = 0
	params.ReorgCPUPerObject = 0

	w, err := workload.Build(cfg, params)
	if err != nil {
		t.Fatal(err)
	}
	roots := w.Roots()
	sig, err := check.Signature(w.DB, roots)
	if err != nil {
		t.Fatal(err)
	}

	// Durable base: checkpoint to disk.
	ckpt, err := w.DB.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if err := recovery.SaveCheckpoint(ckptPath, ckpt); err != nil {
		t.Fatal(err)
	}

	// Concurrent load while the reorganization runs.
	rec := metrics.NewRecorder()
	driver := workload.NewDriver(w, rec)
	rec.StartWindow()
	driver.Start()

	var lastState *reorg.State
	count := 0
	r := reorg.New(w.DB, 1, reorg.Options{
		Mode:            reorg.ModeIRA,
		CheckpointEvery: 10,
		OnCheckpoint:    func(s *reorg.State) { lastState = s },
		Failpoint: func(p string) error {
			if p == "parents-locked" {
				count++
				if count > 80 {
					return reorg.ErrCrash
				}
			}
			return nil
		},
	})
	err = r.Run()
	driver.Stop()
	if !errors.Is(err, reorg.ErrCrash) {
		t.Fatalf("Run() = %v, want simulated crash", err)
	}
	if lastState == nil {
		t.Fatal("no reorganizer state checkpoint before the crash")
	}
	sum := rec.Stop()
	if sum.Commits == 0 {
		t.Fatal("no transactions committed before the crash")
	}
	w.DB.Close() // the crash: all volatile state is gone

	// Restart purely from the files.
	d2, err := recovery.RecoverFromFiles(ckptPath, cfg.LogDir, db.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	rep, err := check.Verify(d2, roots)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		t.Fatalf("recovered database inconsistent: %v", err)
	}

	// Resume the reorganization from its checkpoint; the durable records
	// for the TRT rebuild come from the same WAL segments.
	records, err := recovery.LoadRecords(cfg.LogDir)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := reorg.Resume(d2, lastState, records, reorg.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := r2.Run(); err != nil {
		t.Fatal(err)
	}

	// Every object of partition 1 migrated across the two runs, and the
	// logical graph survived byte for byte.
	sig2, err := check.Signature(d2, roots)
	if err != nil {
		t.Fatal(err)
	}
	if len(sig2) != len(sig) {
		t.Fatalf("reachable set changed: %d -> %d", len(sig), len(sig2))
	}
	for k := range sig {
		if _, ok := sig2[k]; !ok {
			t.Fatalf("object %q lost across crash+resume", k)
		}
	}
	rep2, err := check.Verify(d2, roots)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep2.Err(); err != nil {
		t.Fatal(err)
	}
	st, err := d2.Store().PartitionStats(1)
	if err != nil {
		t.Fatal(err)
	}
	if st.Objects != params.ObjectsPerPartition {
		t.Fatalf("partition 1 holds %d objects, want %d", st.Objects, params.ObjectsPerPartition)
	}
	if r2.Stats().Migrated == 0 {
		t.Fatal("resume migrated nothing; crash happened too late")
	}
}
