// Command reorgbench regenerates the paper's evaluation (§5): every
// figure and table comparing NR (no reorganization), IRA, and PQR.
//
// Usage:
//
//	reorgbench -list
//	reorgbench -exp fig6                # one experiment, quick scale
//	reorgbench -exp all -scale full     # the whole evaluation, paper scale
//	reorgbench -bench lockscale         # lock-manager scaling sweep → BENCH_lock.json
//	reorgbench -bench torture           # crash-recovery torture sweep → BENCH_torture.json
//	reorgbench -bench interference      # 100ms-window reorg-on/off series → BENCH_interference.json
//	reorgbench -bench autopilot         # closed-loop churn→detect→repair run → BENCH_autopilot.json
//	reorgbench -bench bufferpool        # scan fault rate before/after clustering → BENCH_bufferpool.json
//	reorgbench -bench netload           # wire-protocol client/server series → BENCH_netload.json
//	reorgbench -bench queryscan         # operator-pipeline traversal vs clustering + scan interference → BENCH_queryscan.json
//	reorgbench -bench oidmode           # physical vs logical-OID paired migration cells → BENCH_oidmode.json
//	reorgbench -bench lockscale -mode hardware   # one trajectory only (fidelity, hardware, or both)
//	reorgbench -http :6060 -exp fig6    # expose expvar + pprof while running
//
// Quick scale preserves the paper's shapes (who wins, by what factor,
// where curves peak) in minutes; full scale uses the exact Table 1
// parameters and takes correspondingly longer.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/autopilot"
	"repro/internal/harness"
	"repro/internal/obs"
)

// netClientMain is the hidden child-process entry point spawned by the
// netload bench (`reorgbench netclient -addr ...`): it drives walker
// clients against the server and streams per-transaction samples on
// stdout until stdin reaches EOF.
func netClientMain(args []string) {
	fs := flag.NewFlagSet("netclient", flag.ExitOnError)
	var (
		addr       = fs.String("addr", "", "server address")
		tenant     = fs.String("tenant", "load", "tenant name for admission")
		workers    = fs.Int("workers", 1, "walker goroutines in this process")
		seed       = fs.Int64("seed", 1, "walker random seed")
		partitions = fs.Int("partitions", 1, "data partition count")
		ops        = fs.Int("ops", 8, "accesses per transaction")
		updateProb = fs.Float64("updateprob", 0.5, "exclusive-access probability")
		churnProb  = fs.Float64("churnprob", 0, "reference-churn probability")
	)
	fs.Parse(args)
	if *addr == "" {
		fmt.Fprintln(os.Stderr, "netclient: -addr is required")
		os.Exit(2)
	}
	stop := make(chan struct{})
	go func() {
		io.Copy(io.Discard, os.Stdin) // parent closes our stdin to stop us
		close(stop)
	}()
	if err := harness.RunNetClient(os.Stdout, stop, *addr, *tenant, *workers, *seed,
		harness.NetClientParams(*partitions, *ops, *updateProb, *churnProb)); err != nil {
		fmt.Fprintf(os.Stderr, "netclient: %v\n", err)
		os.Exit(1)
	}
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "netclient" {
		netClientMain(os.Args[2:])
		return
	}
	var (
		expID    = flag.String("exp", "", "experiment id (see -list), or 'all'")
		scale    = flag.String("scale", "quick", "experiment scale: quick or full")
		quick    = flag.Bool("quick", false, "shorthand for -scale quick")
		list     = flag.Bool("list", false, "list available experiments")
		seed     = flag.Int64("seed", 1, "workload random seed")
		verbose  = flag.Bool("v", false, "print per-experiment timing")
		bench    = flag.String("bench", "", "benchmark id: lockscale, torture, interference, autopilot, bufferpool, netload, queryscan, oidmode")
		benchout = flag.String("benchout", "", "JSON report path for -bench (default BENCH_<id>.json)")
		mode     = flag.String("mode", "both", "execution mode for -bench trajectories: fidelity, hardware, or both")
		httpAddr = flag.String("http", "", "serve expvar + pprof on this address (e.g. :6060)")
	)
	flag.Parse()
	if *quick {
		*scale = "quick"
	}
	if *httpAddr != "" {
		autopilot.PublishExpvar()
		obs.ServeDebug(*httpAddr)
	}

	if *bench != "" {
		var sc harness.Scale
		switch *scale {
		case "quick":
			sc = harness.QuickScale()
		case "full":
			sc = harness.FullScale()
		default:
			fmt.Fprintf(os.Stderr, "unknown scale %q (quick or full)\n", *scale)
			os.Exit(2)
		}
		sc.Params.Seed = *seed
		modes, err := harness.ParseModes(*mode)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%v\n", err)
			os.Exit(2)
		}
		sc.Modes = modes
		switch *bench {
		case "lockscale":
			out := *benchout
			if out == "" {
				out = "BENCH_lock.json"
			}
			fmt.Printf("== lockscale — lock-manager scaling sweep (scale: %s) ==\n", sc.Name)
			start := time.Now()
			if err := harness.RunLockScale(os.Stdout, sc, out); err != nil {
				fmt.Fprintf(os.Stderr, "benchmark lockscale failed: %v\n", err)
				os.Exit(1)
			}
			if *verbose {
				fmt.Printf("-- lockscale completed in %s\n", time.Since(start).Round(time.Millisecond))
			}
		case "torture":
			out := *benchout
			if out == "" {
				out = "BENCH_torture.json"
			}
			// Quick scale covers every crash point a few times; full
			// scale matches the acceptance sweep (17 seeds per point).
			seeds := 3 * len(harness.DefaultTorturePoints())
			if *scale == "full" {
				seeds = 17 * len(harness.DefaultTorturePoints())
			}
			fmt.Printf("== torture — crash-recovery torture sweep (scale: %s, %d seeds) ==\n", sc.Name, seeds)
			start := time.Now()
			if err := harness.RunTortureBench(os.Stdout, harness.TortureSpec{Seeds: seeds, SeedBase: *seed - 1}, out); err != nil {
				fmt.Fprintf(os.Stderr, "benchmark torture failed: %v\n", err)
				os.Exit(1)
			}
			if *verbose {
				fmt.Printf("-- torture completed in %s\n", time.Since(start).Round(time.Millisecond))
			}
		case "interference":
			out := *benchout
			if out == "" {
				out = "BENCH_interference.json"
			}
			fmt.Printf("== interference — live reorg-on/off window series (scale: %s) ==\n", sc.Name)
			start := time.Now()
			if err := harness.RunInterference(os.Stdout, sc, out); err != nil {
				fmt.Fprintf(os.Stderr, "benchmark interference failed: %v\n", err)
				os.Exit(1)
			}
			if *verbose {
				fmt.Printf("-- interference completed in %s\n", time.Since(start).Round(time.Millisecond))
			}
		case "autopilot":
			out := *benchout
			if out == "" {
				out = "BENCH_autopilot.json"
			}
			fmt.Printf("== autopilot — closed-loop churn→detect→repair run (scale: %s) ==\n", sc.Name)
			start := time.Now()
			if err := harness.RunAutopilot(os.Stdout, sc, out); err != nil {
				fmt.Fprintf(os.Stderr, "benchmark autopilot failed: %v\n", err)
				os.Exit(1)
			}
			if *verbose {
				fmt.Printf("-- autopilot completed in %s\n", time.Since(start).Round(time.Millisecond))
			}
		case "bufferpool":
			out := *benchout
			if out == "" {
				out = "BENCH_bufferpool.json"
			}
			fmt.Printf("== bufferpool — scan fault rate before/after clustering (scale: %s) ==\n", sc.Name)
			start := time.Now()
			if err := harness.RunBufferpool(os.Stdout, sc, out); err != nil {
				fmt.Fprintf(os.Stderr, "benchmark bufferpool failed: %v\n", err)
				os.Exit(1)
			}
			if *verbose {
				fmt.Printf("-- bufferpool completed in %s\n", time.Since(start).Round(time.Millisecond))
			}
		case "netload":
			out := *benchout
			if out == "" {
				out = "BENCH_netload.json"
			}
			// The load runs in real child client processes: this binary
			// re-executed with the hidden netclient subcommand.
			self, err := os.Executable()
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchmark netload: resolve executable: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("== netload — wire-protocol client/server window series (scale: %s) ==\n", sc.Name)
			start := time.Now()
			if err := harness.RunNetload(os.Stdout, sc, out, []string{self, "netclient"}); err != nil {
				fmt.Fprintf(os.Stderr, "benchmark netload failed: %v\n", err)
				os.Exit(1)
			}
			if *verbose {
				fmt.Printf("-- netload completed in %s\n", time.Since(start).Round(time.Millisecond))
			}
		case "queryscan":
			out := *benchout
			if out == "" {
				out = "BENCH_queryscan.json"
			}
			fmt.Printf("== queryscan — cold traversal vs clustering + scan-on/off interference (scale: %s) ==\n", sc.Name)
			start := time.Now()
			if err := harness.RunQueryScan(os.Stdout, sc, out); err != nil {
				fmt.Fprintf(os.Stderr, "benchmark queryscan failed: %v\n", err)
				os.Exit(1)
			}
			if *verbose {
				fmt.Printf("-- queryscan completed in %s\n", time.Since(start).Round(time.Millisecond))
			}
		case "oidmode":
			out := *benchout
			if out == "" {
				out = "BENCH_oidmode.json"
			}
			fmt.Printf("== oidmode — physical vs logical-OID paired migration cells (scale: %s) ==\n", sc.Name)
			start := time.Now()
			if err := harness.RunOIDMode(os.Stdout, sc, out); err != nil {
				fmt.Fprintf(os.Stderr, "benchmark oidmode failed: %v\n", err)
				os.Exit(1)
			}
			if *verbose {
				fmt.Printf("-- oidmode completed in %s\n", time.Since(start).Round(time.Millisecond))
			}
		default:
			fmt.Fprintf(os.Stderr, "unknown benchmark %q (lockscale, torture, interference, autopilot, bufferpool, netload, queryscan, oidmode)\n", *bench)
			os.Exit(2)
		}
		return
	}

	if *list || *expID == "" {
		fmt.Println("experiments:")
		for _, e := range harness.All() {
			fmt.Printf("  %-16s %s\n", e.ID, e.Title)
		}
		if *expID == "" && !*list {
			fmt.Println("\nrun with -exp <id> or -exp all")
		}
		return
	}

	var sc harness.Scale
	switch *scale {
	case "quick":
		sc = harness.QuickScale()
	case "full":
		sc = harness.FullScale()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q (quick or full)\n", *scale)
		os.Exit(2)
	}
	sc.Params.Seed = *seed

	var exps []harness.Experiment
	if *expID == "all" {
		exps = harness.All()
	} else {
		e, ok := harness.ByID(*expID)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; try -list\n", *expID)
			os.Exit(2)
		}
		exps = []harness.Experiment{e}
	}

	for _, e := range exps {
		fmt.Printf("== %s — %s (scale: %s) ==\n", e.ID, e.Title, sc.Name)
		start := time.Now()
		if err := e.Run(os.Stdout, sc); err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		if *verbose {
			fmt.Printf("-- %s completed in %s\n", e.ID, time.Since(start).Round(time.Millisecond))
		}
		fmt.Println()
	}
}
