// Command reorgck is a stress checker: it builds the §5.2 workload, runs
// concurrent random-walk transactions, reorganizes every data partition
// in turn with the selected algorithm, and then verifies full database
// consistency — referential integrity, ERT exactness, reachable-set and
// payload preservation.
//
// The stress run also keeps -scans analytic traversal workers going
// through the internal/query operator pipeline while the partitions
// migrate: every committed traversal must return exactly the payload
// multiset of a quiescent baseline.
//
// Usage:
//
//	reorgck                       # defaults: IRA, small database, 1 scan worker
//	reorgck -alg twolock -mpl 20 -objects 2040 -rounds 2
//	reorgck -workers 4            # reorganize all partitions concurrently
//	reorgck -scans 0              # disable the analytic traversal workers
//	reorgck -mode hardware        # bypass the CPU token, group-commit WAL
//
// -alg selects the reorganization algorithm (ira, twolock, pqr); -mode
// selects the execution mode (fidelity = paper's capacity-1 CPU token,
// hardware = token bypassed with the multicore WAL/latching paths). The
// mode defaults to $REORG_MODE, falling back to fidelity.
//
// With -torture it instead runs the seeded crash-recovery torture
// sweep (see internal/harness.RunTorture): crash at schedule-chosen
// fault points, recover, resume, verify. A failing run prints a replay
// line naming the exact seed and crash point:
//
//	reorgck -torture -seeds 64
//	reorgck -torture -seeds 1 -seedbase 83 -points reorg/twolock-parents-done
//
// With -autopilot it runs the closed-loop correctness mode: every data
// partition is scattered by a shuffle pass, then the autopilot's policy
// engine must find and repair them under concurrent load, after which
// full consistency, graph preservation, and exactness of the statistics
// counters against a fresh scan are verified:
//
//	reorgck -autopilot
//	reorgck -autopilot -policy round-robin -passes 8
//
// With -serve it builds the workload fixture and serves it over the
// wire protocol until interrupted, draining gracefully on SIGINT:
//
//	reorgck -serve :7070 -http :6060   # server state under the "server" expvar
//
// With -netchaos it runs the socket-chaos cell: wire clients increment
// counters while net/conn-drop and net/stall faults fire under a live
// reorganization fleet, then the server drains mid-fleet; the
// committed-prefix oracle, tree signature, and leak sweep must all hold:
//
//	reorgck -netchaos -seed 7
package main

import (
	"errors"
	"expvar"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"flag"

	"repro/internal/autopilot"
	"repro/internal/check"
	"repro/internal/db"
	"repro/internal/harness"
	"repro/internal/hwmode"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/oid"
	"repro/internal/query"
	"repro/internal/reorg"
	"repro/internal/server"
	"repro/internal/workload"
)

func main() {
	var (
		partitions = flag.Int("partitions", 4, "data partitions")
		objects    = flag.Int("objects", 1020, "objects per partition")
		mpl        = flag.Int("mpl", 10, "concurrent transaction threads")
		algName    = flag.String("alg", "ira", "reorganization algorithm: ira, twolock, pqr")
		hwName     = flag.String("mode", "", "execution mode: fidelity or hardware (default: $REORG_MODE, else fidelity)")
		batch      = flag.Int("batch", 1, "object migrations per transaction (ira)")
		rounds     = flag.Int("rounds", 1, "times to reorganize every partition")
		workers    = flag.Int("workers", 1, "scheduler worker pool size; >1 reorganizes partitions concurrently")
		scans      = flag.Int("scans", 1, "analytic traversal workers querying during the stress run (0 disables)")
		seed       = flag.Int64("seed", 1, "workload seed")
		torture    = flag.Bool("torture", false, "run the crash-recovery torture sweep instead of the stress check")
		seeds      = flag.Int("seeds", 24, "torture: number of seeded runs")
		seedbase   = flag.Int64("seedbase", 0, "torture: first seed")
		points     = flag.String("points", "", "torture: comma-separated crash points to rotate through (default: the full taxonomy)")
		autopilotF = flag.Bool("autopilot", false, "run the autopilot closed-loop correctness mode instead of the stress check")
		policyName = flag.String("policy", "greedy", "autopilot: partition-selection policy (greedy, round-robin, threshold)")
		passes     = flag.Int("passes", 0, "autopilot: passes to run (default: one per data partition)")
		serveAddr  = flag.String("serve", "", "serve the workload fixture over the wire protocol on this address (e.g. :7070)")
		netchaos   = flag.Bool("netchaos", false, "run the socket-chaos cell instead of the stress check")
		chaosDur   = flag.Duration("chaosdur", 0, "netchaos: chaos phase duration (default 2s)")
		httpAddr   = flag.String("http", "", "serve expvar + pprof on this address (e.g. :6060)")
	)
	flag.Parse()
	if *hwName != "" {
		execMode, err := hwmode.Parse(*hwName)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		// Every construction path (workload defaults, db.Open) consults
		// $REORG_MODE, so exporting the parsed flag applies the mode to
		// the stress, torture, and autopilot runs alike.
		os.Setenv("REORG_MODE", string(execMode))
	}
	if *httpAddr != "" {
		autopilot.PublishExpvar()
		obs.ServeDebug(*httpAddr)
	}

	if *torture {
		os.Exit(runTorture(*seeds, *seedbase, *points))
	}
	if *netchaos {
		os.Exit(runNetChaos(*seed, *mpl, *chaosDur))
	}
	if *serveAddr != "" {
		os.Exit(runServe(*serveAddr, *partitions, *objects, *seed))
	}
	if *autopilotF {
		os.Exit(runAutopilot(*partitions, *objects, *mpl, *batch, *passes, *seed, *policyName))
	}

	var mode reorg.Mode
	switch *algName {
	case "ira":
		mode = reorg.ModeIRA
	case "twolock":
		mode = reorg.ModeIRATwoLock
	case "pqr":
		mode = reorg.ModePQR
	default:
		fmt.Fprintf(os.Stderr, "unknown algorithm %q (ira, twolock, pqr)\n", *algName)
		os.Exit(2)
	}

	params := workload.DefaultParams()
	params.NumPartitions = *partitions
	params.ObjectsPerPartition = *objects
	params.MPL = *mpl
	params.Seed = *seed

	fmt.Printf("building %d partitions × %d objects...\n", *partitions, *objects)
	w, err := workload.Build(db.DefaultConfig(), params)
	if err != nil {
		fatal(err)
	}
	defer w.DB.Close()

	sigBefore, err := check.Signature(w.DB, w.Roots())
	if err != nil {
		fatal(err)
	}
	fmt.Printf("reachable graph: %d objects\n", len(sigBefore))

	var fleet *metrics.FleetRecorder
	if *workers > 1 {
		fleet = metrics.NewFleetRecorder(*workers)
	}
	if *httpAddr != "" {
		// With the debug endpoint up, expose the live lock-manager
		// counters and per-worker fleet progress alongside the obs
		// tracer state.
		expvar.Publish("locks", expvar.Func(func() any { return w.DB.Locks().Stats() }))
		if fleet != nil {
			expvar.Publish("fleet", expvar.Func(func() any { return fleet.Snapshot() }))
		}
	}

	// Quiescent baseline for the scan workers: the payload multiset
	// every committed traversal must reproduce, whatever the addresses
	// underneath it are doing.
	traverse := func(budget int) (*query.Result, error) {
		return query.Run(w.DB, query.Options{MaxRestarts: budget}, func(e *query.Exec) (query.Operator, error) {
			return query.NewFollowRefs(w.Roots(), -1), nil
		})
	}
	var want map[string]int
	if *scans > 0 {
		base, err := traverse(5)
		if err != nil {
			fatal(err)
		}
		want = query.Multiset(query.Payloads(base.Rows))
	}

	rec := metrics.NewRecorder()
	driver := workload.NewDriver(w, rec)
	rec.StartWindow()
	driver.Start()

	// A traversal S-locks everything it returns, so the reorganizer's
	// §4.5 pre-start wait must be able to outlast one (plus lock-queue
	// time) instead of the default snappy budget.
	ropts := reorg.Options{Mode: mode, BatchSize: *batch}
	if *scans > 0 {
		ropts.WaitTimeout = 5 * time.Second
	}

	var (
		scanStop      = make(chan struct{})
		scanWG        sync.WaitGroup
		scanCommits   atomic.Int64
		scanExhausted atomic.Int64
		scanMu        sync.Mutex
		scanViolation error
	)
	for si := 0; si < *scans; si++ {
		scanWG.Add(1)
		go func() {
			defer scanWG.Done()
			for {
				select {
				case <-scanStop:
					return
				default:
				}
				res, err := traverse(30)
				if err != nil {
					if errors.Is(err, query.ErrRestartsExhausted) {
						scanExhausted.Add(1)
						continue
					}
					scanMu.Lock()
					if scanViolation == nil {
						scanViolation = err
					}
					scanMu.Unlock()
					return
				}
				scanCommits.Add(1)
				got := query.Multiset(query.Payloads(res.Rows))
				bad := len(got) != len(want)
				if !bad {
					for s, n := range want {
						if got[s] != n {
							bad = true
							break
						}
					}
				}
				if bad {
					scanMu.Lock()
					if scanViolation == nil {
						scanViolation = fmt.Errorf("committed traversal drifted from the baseline payload multiset")
					}
					scanMu.Unlock()
					return
				}
				time.Sleep(5 * time.Millisecond)
			}
		}()
	}

	for round := 1; round <= *rounds; round++ {
		if *workers > 1 {
			// Parallel round: the scheduler fans the algorithm out over
			// every data partition at once.
			var parts []oid.PartitionID
			for p := 1; p <= *partitions; p++ {
				parts = append(parts, oid.PartitionID(p))
			}
			s, err := reorg.NewScheduler(w.DB, parts, reorg.FleetOptions{
				Workers: *workers,
				Reorg:   ropts,
				Fleet:   fleet,
			})
			if err != nil {
				fatal(err)
			}
			if err := s.Run(); err != nil {
				fatal(fmt.Errorf("round %d: %w", round, err))
			}
			st := s.Stats()
			fmt.Printf("round %d: %s fleet (%d workers) migrated %d objects over %d partitions, %d parent updates, %d retries in %s\n",
				round, mode, s.Workers(), st.Migrated, st.Done, st.ParentsUpdated, st.Retries, st.Duration().Round(1e6))
			continue
		}
		for p := 1; p <= *partitions; p++ {
			r := reorg.New(w.DB, oid.PartitionID(p), ropts)
			if err := r.Run(); err != nil {
				fatal(fmt.Errorf("round %d partition %d: %w", round, p, err))
			}
			st := r.Stats()
			fmt.Printf("round %d, partition %d: %s migrated %d objects, %d parent updates, %d retries in %s\n",
				round, p, mode, st.Migrated, st.ParentsUpdated, st.Retries, st.Duration().Round(1e6))
		}
	}
	close(scanStop)
	scanWG.Wait()
	sum := rec.Stop()
	driver.Stop()
	fmt.Printf("workload during reorganizations: %s\n", sum)
	if scanViolation != nil {
		fatal(fmt.Errorf("QUERY VIOLATION: %w", scanViolation))
	}
	if *scans > 0 {
		fmt.Printf("analytic scans: %d committed traversals, %d exhausted budgets, every committed multiset exact\n",
			scanCommits.Load(), scanExhausted.Load())
	}

	rep, err := check.Verify(w.DB, w.Roots())
	if err != nil {
		fatal(err)
	}
	if err := rep.Err(); err != nil {
		fatal(fmt.Errorf("CONSISTENCY VIOLATION: %w", err))
	}
	sigAfter, err := check.Signature(w.DB, w.Roots())
	if err != nil {
		fatal(err)
	}
	if len(sigAfter) != len(sigBefore) {
		fatal(fmt.Errorf("reachable set changed: %d -> %d objects", len(sigBefore), len(sigAfter)))
	}
	for k := range sigBefore {
		if _, ok := sigAfter[k]; !ok {
			fatal(fmt.Errorf("object %q lost", k))
		}
	}
	fmt.Printf("OK: %d objects, %d references, ERT exact, graph preserved\n", rep.Objects, rep.Refs)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

// runServe builds the workload fixture and serves it over the wire
// protocol until interrupted. SIGINT/SIGTERM triggers a graceful drain:
// new transactions are rejected with DRAINING, in-flight ones get a
// grace period to finish. Roots are published through the catalog as
// "roots/<partition>". Returns the process exit code.
func runServe(addr string, partitions, objects int, seed int64) int {
	params := workload.DefaultParams()
	params.NumPartitions = partitions
	params.ObjectsPerPartition = objects
	params.Seed = seed

	fmt.Printf("building %d partitions × %d objects...\n", partitions, objects)
	w, err := workload.Build(db.DefaultConfig(), params)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	defer w.DB.Close()

	srv, lnAddr, err := server.Start(server.Config{
		DB: w.DB,
		Catalog: func(name string) []oid.OID {
			var part int
			if _, err := fmt.Sscanf(name, "roots/%d", &part); err != nil {
				return nil
			}
			return w.RootsOf(oid.PartitionID(part))
		},
		PerOpWork: func() { w.BurnCPU(params.CPUPerOp) },
	}, addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	obs.RegisterServerStats(func() any { return srv.StatsSnapshot() })

	fmt.Printf("serving on %s (roots under \"roots/1\"..\"roots/%d\"; SIGINT drains)\n",
		lnAddr, partitions)
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("draining...")
	if err := srv.Drain(); err != nil {
		fmt.Fprintf(os.Stderr, "drain: %v\n", err)
		return 1
	}
	st := srv.StatsSnapshot()
	fmt.Printf("drained: %d conns served, %d committed, %d aborted, %d shed\n",
		st.Accepted, st.Committed, st.Aborted, st.ShedConns+st.ShedTxns)
	return 0
}

// runNetChaos executes the socket-chaos cell and returns the process
// exit code.
func runNetChaos(seed int64, mpl int, dur time.Duration) int {
	res, err := harness.RunNetChaos(os.Stdout, harness.NetChaosConfig{
		Seed:     seed,
		MPL:      mpl,
		Duration: dur,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Printf("netchaos: OK — committed prefix exact, graph preserved, no leaks (%d commits under %d firings)\n",
		res.Commits, res.Firings)
	return 0
}

// runAutopilot is the closed-loop correctness mode: scatter every data
// partition with a quiescent shuffle pass, then let the autopilot's
// policy engine find and repair them while the workload runs, and verify
// consistency, graph preservation, and counter exactness afterwards.
// Returns the process exit code.
func runAutopilot(partitions, objects, mpl, batch, passes int, seed int64, policyName string) int {
	policy, err := autopilot.ParsePolicy(policyName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	params := workload.DefaultParams()
	params.NumPartitions = partitions
	params.ObjectsPerPartition = objects
	params.MPL = mpl
	params.Seed = seed

	fmt.Printf("building %d partitions × %d objects...\n", partitions, objects)
	w, err := workload.Build(db.DefaultConfig(), params)
	if err != nil {
		fatal(err)
	}
	defer w.DB.Close()
	sigBefore, err := check.Signature(w.DB, w.Roots())
	if err != nil {
		fatal(err)
	}
	fmt.Printf("reachable graph: %d objects\n", len(sigBefore))

	var parts []oid.PartitionID
	for p := 1; p <= partitions; p++ {
		parts = append(parts, oid.PartitionID(p))
	}
	ap, err := autopilot.New(w.DB, autopilot.Config{
		Partitions: parts,
		Policy:     policy,
		MaxPerPass: 1,
		Seed:       uint64(seed),
		// No workload baseline is installed, so the pacer degrades to a
		// fixed-pace token bucket — the graceful-degradation path.
		Pacer: autopilot.PacerConfig{InitialRate: 400, MinRate: 400, MaxRate: 400},
		Reorg: reorg.Options{BatchSize: batch},
	})
	if err != nil {
		fatal(err)
	}
	restore := autopilot.Install(ap)
	defer restore()

	// Scatter every data partition before the workload starts: a
	// same-partition first-fit pass in shuffled order decorrelates page
	// placement from the reference graph.
	for _, part := range parts {
		r := reorg.New(w.DB, part, reorg.Options{
			Mode: reorg.ModeOffline,
			Plan: &reorg.Plan{Target: func(oid.OID) oid.PartitionID { return part }},
			MigrationOrder: func(objs []oid.OID) []oid.OID {
				rng := rand.New(rand.NewSource(seed + int64(part)))
				rng.Shuffle(len(objs), func(i, j int) { objs[i], objs[j] = objs[j], objs[i] })
				return objs
			},
		})
		if err := r.Run(); err != nil {
			fatal(fmt.Errorf("churn partition %d: %w", part, err))
		}
	}
	fmt.Printf("churned %d partitions\n", len(parts))

	rec := metrics.NewRecorder()
	driver := workload.NewDriver(w, rec)
	rec.StartWindow()
	driver.Start()

	if passes <= 0 {
		passes = partitions
	}
	for pass := 1; pass <= passes; pass++ {
		rep, err := ap.RunPass()
		if err != nil {
			driver.Stop()
			fatal(fmt.Errorf("pass %d: %w", pass, err))
		}
		fmt.Printf("pass %d (%s): selected %v, migrated %d objects, %d retries in %s\n",
			pass, policy, rep.Selected, rep.Migrated, rep.Retries, rep.Duration.Round(1e6))
	}
	sum := rec.Stop()
	driver.Stop()
	fmt.Printf("workload during autopilot: %s\n", sum)

	rep, err := check.Verify(w.DB, w.Roots())
	if err != nil {
		fatal(err)
	}
	if err := rep.Err(); err != nil {
		fatal(fmt.Errorf("CONSISTENCY VIOLATION: %w", err))
	}
	sigAfter, err := check.Signature(w.DB, w.Roots())
	if err != nil {
		fatal(err)
	}
	if len(sigAfter) != len(sigBefore) {
		fatal(fmt.Errorf("reachable set changed: %d -> %d objects", len(sigBefore), len(sigAfter)))
	}
	for k := range sigBefore {
		if _, ok := sigAfter[k]; !ok {
			fatal(fmt.Errorf("object %q lost", k))
		}
	}
	if err := ap.VerifyCounters(); err != nil {
		fatal(fmt.Errorf("COUNTER DRIFT: %w", err))
	}
	fmt.Printf("OK: %d objects, %d references, ERT exact, graph preserved, statistics counters exact\n",
		rep.Objects, rep.Refs)
	return 0
}

// runTorture executes the seeded crash-recovery sweep and returns the
// process exit code: 0 on a clean sweep, 1 on any invariant violation,
// 2 on usage errors.
func runTorture(seeds int, seedbase int64, pointsCSV string) int {
	pts := harness.DefaultTorturePoints()
	if pointsCSV != "" {
		want := make(map[string]bool)
		for _, p := range strings.Split(pointsCSV, ",") {
			want[strings.TrimSpace(p)] = true
		}
		var sel []harness.TorturePoint
		for _, tp := range pts {
			if want[tp.Point] {
				sel = append(sel, tp)
			}
		}
		if len(sel) == 0 {
			fmt.Fprintf(os.Stderr, "no crash points match %q; known points:\n", pointsCSV)
			for _, tp := range pts {
				fmt.Fprintf(os.Stderr, "  %s (%s)\n", tp.Point, tp.Mode)
			}
			return 2
		}
		pts = sel
	}
	fmt.Printf("torture: %d seeds from %d over %d crash points\n", seeds, seedbase, len(pts))
	failures, err := harness.RunTortureSweep(os.Stdout, harness.TortureSpec{
		Seeds:    seeds,
		SeedBase: seedbase,
		Points:   pts,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintf(os.Stderr, "%v\n  %s\n", f.Err, f.ReplayLine())
			f.DumpTrace(os.Stderr, "  ")
		}
		fmt.Fprintf(os.Stderr, "torture: %d of %d seeds FAILED\n", len(failures), seeds)
		return 1
	}
	fmt.Printf("torture: OK — %d seeds, every invariant held through every crash\n", seeds)
	return 0
}
