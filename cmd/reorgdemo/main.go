// Command reorgdemo narrates one on-line reorganization step by step: it
// builds a small fragmented database, starts concurrent readers, and runs
// IRA while printing what each phase of the algorithm does — the fuzzy
// traversal, the TRT, exact parent locking, and the migration itself.
package main

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/check"
	"repro/internal/db"
	"repro/internal/lock"
	"repro/internal/oid"
	"repro/internal/reorg"
)

func main() {
	cfg := db.DefaultConfig()
	d := db.Open(cfg)
	defer d.Close()
	d.CreatePartition(0) // root partition
	d.CreatePartition(1) // the partition we will reorganize

	fmt.Println("== building a fragmented partition ==")
	tx, _ := d.Begin()
	var objs []oid.OID
	for i := 0; i < 400; i++ {
		o, err := tx.Create(1, []byte(fmt.Sprintf("object-%03d", i)), nil)
		if err != nil {
			panic(err)
		}
		objs = append(objs, o)
	}
	// Chain survivors into a list reachable from a persistent root, and
	// delete the rest to fragment the pages.
	var kept []oid.OID
	for i, o := range objs {
		if i%3 == 0 {
			kept = append(kept, o)
		} else if err := tx.Delete(o); err != nil {
			panic(err)
		}
	}
	for i := 0; i+1 < len(kept); i++ {
		if err := tx.InsertRef(kept[i], kept[i+1]); err != nil {
			panic(err)
		}
	}
	root, _ := tx.Create(0, []byte("persistent-root"), []oid.OID{kept[0]})
	if err := tx.Commit(); err != nil {
		panic(err)
	}

	st, _ := d.Store().PartitionStats(1)
	fmt.Printf("partition 1: %d objects, %d pages, %d dead bytes (%.1f%% fragmentation)\n",
		st.Objects, st.Pages, st.DeadBytes, 100*st.Fragmentation())
	fmt.Printf("ERT of partition 1: %d referenced objects, %d external references\n",
		d.ERT(1).Children(), d.ERT(1).Refs())
	fmt.Printf("sample object %q lives at %v\n\n", "object-000", kept[0])

	fmt.Println("== starting concurrent readers ==")
	var stop atomic.Bool
	var reads atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for !stop.Load() {
				tx, err := d.Begin()
				if err != nil {
					return
				}
				cur := root
				for i := 0; i < 8; i++ {
					if err := tx.Lock(cur, lock.Shared); err != nil {
						break
					}
					obj, err := tx.Read(cur)
					if err != nil || len(obj.Refs) == 0 {
						break
					}
					reads.Add(1)
					cur = obj.Refs[rng.Intn(len(obj.Refs))]
				}
				tx.Commit()
			}
		}(int64(g))
	}

	fmt.Println("\n== running IRA (compaction plan) ==")
	r := reorg.New(d, 1, reorg.Options{
		Mode:            reorg.ModeIRA,
		CheckpointEvery: 50,
		OnCheckpoint: func(s *reorg.State) {
			fmt.Printf("  checkpoint: %d objects known, %d migrated, TRT holds %d tuples\n",
				len(s.Objects), len(s.Migrated), len(s.TRT.Tuples))
		},
	})
	start := time.Now()
	if err := r.Run(); err != nil {
		panic(err)
	}
	stats := r.Stats()
	stop.Store(true)
	wg.Wait()

	fmt.Printf("\nIRA finished in %s:\n", time.Since(start).Round(time.Millisecond))
	fmt.Printf("  traversed %d live objects (fuzzy traversal from the ERT)\n", stats.Traversed)
	fmt.Printf("  migrated  %d objects, rewriting %d parent references\n", stats.Migrated, stats.ParentsUpdated)
	fmt.Printf("  peak locks held by the reorganizer: %d\n", stats.MaxLocksHeld)
	fmt.Printf("  deadlock retries: %d, TRT tuples purged: %d\n", stats.Retries, stats.TRTPurged)
	fmt.Printf("  concurrent readers completed %d object reads meanwhile\n", reads.Load())

	if _, err := d.Store().TrimPages(1); err != nil {
		panic(err)
	}
	st, _ = d.Store().PartitionStats(1)
	fmt.Printf("\npartition 1 after compaction: %d objects, %d pages, %d dead bytes\n",
		st.Objects, st.Pages, st.DeadBytes)
	tx2, _ := d.Begin()
	obj, err := tx2.Read(root)
	if err != nil {
		panic(err)
	}
	fmt.Printf("sample object %q now lives at %v (followed from the root)\n", "object-000", obj.Refs[0])
	tx2.Commit()

	rep, err := check.Verify(d, []oid.OID{root})
	if err != nil {
		panic(err)
	}
	if err := rep.Err(); err != nil {
		panic(err)
	}
	fmt.Printf("\nconsistency check: %d objects, %d references, no dangling pointers, ERT exact\n",
		rep.Objects, rep.Refs)
}
