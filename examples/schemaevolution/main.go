// Schema evolution (paper §1): "Schema Evolution could cause an increase
// in object size. Such objects may have to be moved since they no longer
// fit in their current location."
//
// The example widens every "v1" record with new fields. Records whose
// page has room grow in place; the ones that no longer fit are migrated
// on-line — only those, using the reorganizer's Filter — and rewritten to
// the v2 representation in flight via the Transform hook, while readers
// keep traversing the collection.
package main

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/check"
	"repro/internal/db"
	"repro/internal/lock"
	"repro/internal/oid"
	"repro/internal/reorg"
	"repro/internal/storage"
)

func main() {
	cfg := db.DefaultConfig()
	cfg.PageSize = 1024
	cfg.FillFactor = 0.85 // default headroom: a little room to grow in place
	// Readers traverse the whole directory while records migrate, so
	// reader-holds-directory / migrator-holds-record deadlock cycles are
	// routine here; they resolve by timeout, and the paper's 1 s default
	// would pace the migration at one record per second when they pile up.
	cfg.LockTimeout = 100 * time.Millisecond
	d := db.Open(cfg)
	defer d.Close()
	must(d.CreatePartition(0))
	must(d.CreatePartition(1))

	// A packed collection of v1 records.
	tx, err := d.Begin()
	must(err)
	const n = 150
	var records []oid.OID
	for i := 0; i < n; i++ {
		payload := pad(fmt.Sprintf("v1|rec-%03d", i), 90)
		o, err := tx.Create(1, payload, nil)
		must(err)
		records = append(records, o)
	}
	// Two-level directory (small pages cap fan-out).
	var chunks []oid.OID
	for i := 0; i < len(records); i += 50 {
		c, err := tx.Create(0, []byte(fmt.Sprintf("chunk-%d", i)), records[i:i+50])
		must(err)
		chunks = append(chunks, c)
	}
	dir, err := tx.Create(0, []byte("directory"), chunks)
	must(err)
	must(tx.Commit())

	// Readers traverse the directory throughout the evolution.
	var stop atomic.Bool
	var reads atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				tx, err := d.Begin()
				if err != nil {
					return
				}
				ok := func() bool {
					if tx.Lock(dir, lock.Shared) != nil {
						return false
					}
					dobj, err := tx.Read(dir)
					if err != nil {
						return false
					}
					for _, c := range dobj.Refs {
						cobj, err := tx.Read(c)
						if err != nil {
							return false
						}
						for _, rec := range cobj.Refs {
							if _, err := tx.Read(rec); err != nil {
								return false
							}
							reads.Add(1)
						}
					}
					return true
				}()
				if ok {
					tx.Commit()
				} else {
					tx.Abort()
				}
				// Pace the traversals. Back-to-back readers re-lock every
				// record the instant the previous transaction commits, so
				// on a single-CPU host the reorganizer's ever-locker wait
				// (§4.1) never finds an instant when a record is quiet.
				time.Sleep(time.Millisecond)
			}
		}()
	}

	// Phase 1: try to widen every record in place; collect the ones that
	// no longer fit. (Each attempt is its own transaction so a failed
	// grow rolls back cleanly.)
	widen := func(tx *db.Txn, o oid.OID) error {
		obj, err := tx.Read(o)
		if err != nil {
			return err
		}
		return tx.UpdatePayload(o, append(obj.Payload, pad("|v2-extra-fields", 60)...))
	}
	var needMove []oid.OID
	grown := 0
	for _, o := range records {
		tx, err := d.Begin()
		must(err)
		err = widen(tx, o)
		switch {
		case err == nil:
			must(tx.Commit())
			grown++
		case errors.Is(err, storage.ErrWontFit):
			tx.Abort()
			needMove = append(needMove, o)
		default:
			tx.Abort()
			must(err)
		}
	}
	fmt.Printf("schema widening: %d records grew in place, %d no longer fit their page\n",
		grown, len(needMove))

	// Phase 2: migrate exactly the stuck records on-line, rewriting each
	// into its v2 representation AS it moves — the reorganizer's
	// Transform hook makes the relocation and the schema rewrite one
	// atomic step per object.
	moveSet := map[oid.OID]bool{}
	for _, o := range needMove {
		moveSet[o] = true
	}
	r := reorg.New(d, 1, reorg.Options{
		Mode:   reorg.ModeIRA,
		Filter: func(o oid.OID) bool { return moveSet[o] },
		Transform: func(o oid.OID, payload []byte) []byte {
			return append(payload, pad("|v2-extra-fields", 60)...)
		},
	})
	must(r.Run())
	fmt.Printf("on-line migration: moved %d records (rewritten to v2 in flight), rewrote %d directory references\n",
		r.Stats().Migrated, r.Stats().ParentsUpdated)

	stop.Store(true)
	wg.Wait()

	// Every record is v2 now, and the database is consistent.
	rep, err := check.Verify(d, []oid.OID{dir})
	must(err)
	must(rep.Err())
	tx, err = d.Begin()
	must(err)
	v2 := 0
	dobj, err := tx.Read(dir)
	must(err)
	for _, c := range dobj.Refs {
		cobj, _ := tx.Read(c)
		for _, rec := range cobj.Refs {
			obj, err := tx.Read(rec)
			must(err)
			if len(obj.Payload) == 150 {
				v2++
			}
		}
	}
	must(tx.Commit())
	fmt.Printf("verified: %d/%d records at the v2 schema, %d concurrent reads completed\n",
		v2, n, reads.Load())
	if v2 != n {
		panic("records left at v1")
	}
}

func pad(s string, size int) []byte {
	b := make([]byte, size)
	copy(b, s)
	return b
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
