// Compaction: the paper's §1 motivating scenario. Continuous allocation
// and deallocation of variable-length objects fragments a partition; an
// on-line compaction migrates the survivors into densely packed pages
// while readers and writers keep running, then the emptied pages are
// reclaimed.
package main

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/check"
	"repro/internal/db"
	"repro/internal/lock"
	"repro/internal/oid"
	"repro/internal/reorg"
)

const dataPartition oid.PartitionID = 1

func main() {
	cfg := db.DefaultConfig()
	d := db.Open(cfg)
	defer d.Close()
	must(d.CreatePartition(0))
	must(d.CreatePartition(dataPartition))

	// Build a directory object (persistent root) over variable-length
	// records, then churn: delete records and allocate new ones of
	// different sizes, the classic fragmentation recipe.
	rng := rand.New(rand.NewSource(7))
	tx, err := d.Begin()
	must(err)
	var records []oid.OID
	for i := 0; i < 600; i++ {
		payload := make([]byte, 40+rng.Intn(160))
		copy(payload, fmt.Sprintf("rec-%04d", i))
		o, err := tx.Create(dataPartition, payload, nil)
		must(err)
		records = append(records, o)
	}
	dir, err := tx.Create(0, []byte("directory"), records)
	must(err)
	must(tx.Commit())

	// Churn: drop 60% of the records (variable sizes leave holes no
	// in-page compaction can use across pages).
	tx, err = d.Begin()
	must(err)
	var survivors []oid.OID
	for i, o := range records {
		if rng.Intn(10) < 6 {
			must(tx.DeleteRef(dir, o))
			must(tx.Delete(o))
		} else {
			_ = i
			survivors = append(survivors, o)
		}
	}
	must(tx.Commit())

	st, _ := d.Store().PartitionStats(dataPartition)
	fmt.Printf("fragmented: %d objects across %d pages, %d dead bytes (%.1f%% of the partition)\n",
		st.Objects, st.Pages, st.DeadBytes, 100*st.Fragmentation())

	// Keep transactions running during the compaction: readers scan
	// random records through the directory; writers update them.
	var stop atomic.Bool
	var ops atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for !stop.Load() {
				tx, err := d.Begin()
				if err != nil {
					return
				}
				mode := lock.Shared
				if rng.Intn(2) == 0 {
					mode = lock.Exclusive
				}
				if err := tx.Lock(dir, mode); err != nil {
					tx.Abort()
					continue
				}
				obj, err := tx.Read(dir)
				if err != nil || len(obj.Refs) == 0 {
					tx.Abort()
					continue
				}
				rec := obj.Refs[rng.Intn(len(obj.Refs))]
				if err := tx.Lock(rec, mode); err != nil {
					tx.Abort()
					continue
				}
				recObj, err := tx.Read(rec)
				if err != nil {
					tx.Abort()
					continue
				}
				if mode == lock.Exclusive {
					if err := tx.UpdatePayload(rec, recObj.Payload); err != nil {
						tx.Abort()
						continue
					}
				}
				if tx.Commit() == nil {
					ops.Add(1)
				}
			}
		}(int64(g))
	}

	// On-line compaction: IRA with the (default) compact plan migrates
	// every live object into fresh, densely packed pages.
	start := time.Now()
	r := reorg.New(d, dataPartition, reorg.Options{Mode: reorg.ModeIRA})
	must(r.Run())
	_, err = d.Store().TrimPages(dataPartition)
	must(err)
	elapsed := time.Since(start)

	stop.Store(true)
	wg.Wait()

	st2, _ := d.Store().PartitionStats(dataPartition)
	fmt.Printf("compacted:  %d objects across %d pages, %d dead bytes — in %s, with %d concurrent transactions committed\n",
		st2.Objects, st2.Pages, st2.DeadBytes, elapsed.Round(time.Millisecond), ops.Load())
	fmt.Printf("pages reclaimed: %d -> %d\n", st.Pages, st2.Pages)

	rep, err := check.Verify(d, []oid.OID{dir})
	must(err)
	must(rep.Err())
	if rep.Reachable != len(survivors)+1 {
		panic(fmt.Sprintf("lost records: reachable %d, want %d", rep.Reachable, len(survivors)+1))
	}
	fmt.Printf("verified: %d records intact, every reference valid, ERT exact\n", len(survivors))
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
