// Clustering (paper §1): co-locating objects that are accessed together.
//
// A linked list is allocated interleaved with unrelated objects, so
// consecutive list elements land on different pages and a scan touches
// almost every page of the partition. The reorganizer migrates objects in
// traversal order with dense placement, which lays the list out
// contiguously — while readers keep scanning it.
package main

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/check"
	"repro/internal/db"
	"repro/internal/lock"
	"repro/internal/oid"
	"repro/internal/reorg"
)

func main() {
	cfg := db.DefaultConfig()
	cfg.PageSize = 1024 // small pages make locality visible
	// The filler sweep below records physical store addresses as
	// references; pin physical addressing so REORG_LOGICAL_OID cannot
	// reinterpret them as logical identities.
	cfg.PhysicalOIDs = true
	d := db.Open(cfg)
	defer d.Close()
	must(d.CreatePartition(0))
	must(d.CreatePartition(1))

	// Interleave list elements with filler objects so the list scatters.
	tx, err := d.Begin()
	must(err)
	const listLen = 120
	pad := func(s string) []byte { // ~100-byte objects, a few per page
		b := make([]byte, 100)
		copy(b, s)
		return b
	}
	var list []oid.OID
	for i := 0; i < listLen; i++ {
		o, err := tx.Create(1, pad(fmt.Sprintf("elem-%03d", i)), nil)
		must(err)
		list = append(list, o)
		for j := 0; j < 6; j++ {
			_, err := tx.Create(1, pad(fmt.Sprintf("filler-%03d-%d", i, j)), nil)
			must(err)
		}
	}
	for i := 0; i+1 < len(list); i++ {
		must(tx.InsertRef(list[i], list[i+1]))
	}
	// Keep the filler reachable through a catch-all object so it is not
	// garbage (we are clustering, not collecting).
	var filler []oid.OID
	d.Store().ForEach(1, func(o oid.OID, _ []byte) bool {
		filler = append(filler, o)
		return true
	})
	// Small pages cap an object's reference fan-out, so the keeper is a
	// two-level tree over the filler.
	var chunks []oid.OID
	for i := 0; i < len(filler); i += 64 {
		end := i + 64
		if end > len(filler) {
			end = len(filler)
		}
		c, err := tx.Create(0, []byte(fmt.Sprintf("keeper-chunk-%d", i)), filler[i:end])
		must(err)
		chunks = append(chunks, c)
	}
	keeper, err := tx.Create(0, []byte("keeper"), chunks)
	must(err)
	root, err := tx.Create(0, []byte("root"), []oid.OID{list[0]})
	must(err)
	must(tx.Commit())

	fmt.Printf("list scan locality before clustering: %.2f page switches per hop\n",
		scanLocality(d, root))

	// Concurrent scanners keep reading the list during reorganization.
	var stop atomic.Bool
	var scans atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				if scanList(d, root) {
					scans.Add(1)
				}
			}
		}()
	}

	// The clustering policy: migrate the list elements first, in list
	// order; dense placement then packs them contiguously. This is the
	// MigrationOrder hook — "the driving operation makes these
	// decisions" (paper §2).
	listOrder := append([]oid.OID(nil), list...)
	r := reorg.New(d, 1, reorg.Options{
		Mode: reorg.ModeIRA,
		MigrationOrder: func(objects []oid.OID) []oid.OID {
			return listOrder // remaining objects follow in traversal order
		},
	})
	must(r.Run())
	stop.Store(true)
	wg.Wait()

	fmt.Printf("reorganized %d objects while %d concurrent scans completed\n",
		r.Stats().Migrated, scans.Load())
	fmt.Printf("list scan locality after clustering:  %.2f page switches per hop\n",
		scanLocality(d, root))

	rep, err := check.Verify(d, []oid.OID{root, keeper})
	must(err)
	must(rep.Err())
	fmt.Printf("verified: %d objects, %d references, all valid\n", rep.Objects, rep.Refs)
}

// scanLocality walks the list and returns the fraction of hops that cross
// a page boundary (1.0 = every hop lands on a different page).
func scanLocality(d *db.Database, root oid.OID) float64 {
	tx, err := d.Begin()
	must(err)
	defer tx.Commit()
	obj, err := tx.Read(root)
	must(err)
	cur := obj.Refs[0]
	hops, switches := 0, 0
	for {
		next, err := tx.Read(cur)
		must(err)
		if len(next.Refs) == 0 {
			break
		}
		hops++
		if next.Refs[0].Page() != cur.Page() || next.Refs[0].Partition() != cur.Partition() {
			switches++
		}
		cur = next.Refs[0]
	}
	return float64(switches) / float64(hops)
}

// scanList walks the whole list under shared locks; returns false if a
// lock timed out (it is simply retried).
func scanList(d *db.Database, root oid.OID) bool {
	tx, err := d.Begin()
	if err != nil {
		return false
	}
	cur := root
	for {
		if err := tx.Lock(cur, lock.Shared); err != nil {
			tx.Abort()
			return false
		}
		obj, err := tx.Read(cur)
		if err != nil {
			tx.Abort()
			return false
		}
		if len(obj.Refs) == 0 {
			return tx.Commit() == nil
		}
		cur = obj.Refs[0]
	}
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
