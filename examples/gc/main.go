// Copying garbage collection with physical references (paper §4.6).
//
// The reorganization algorithm doubles as a partitioned copying collector:
// the fuzzy traversal provably finds every live object of the partition
// (Lemma 3.1), those are evacuated to a fresh partition, and the old
// partition — now containing only garbage — is reclaimed wholesale. No
// prior collector in the literature could do this when references are
// physical; that combination is the paper's headline capability.
package main

import (
	"fmt"

	"repro/internal/check"
	"repro/internal/db"
	"repro/internal/oid"
	"repro/internal/reorg"
)

func main() {
	d := db.Open(db.DefaultConfig())
	defer d.Close()
	must(d.CreatePartition(0)) // roots
	must(d.CreatePartition(1)) // from-space

	// A live linked structure and a lot of garbage, including garbage
	// cycles and garbage pointing at live objects — the cases that break
	// naive reference counting.
	tx, err := d.Begin()
	must(err)
	var live []oid.OID
	for i := 0; i < 50; i++ {
		o, err := tx.Create(1, []byte(fmt.Sprintf("live-%02d", i)), nil)
		must(err)
		if i > 0 {
			must(tx.InsertRef(live[i-1], o))
		}
		live = append(live, o)
	}
	root, err := tx.Create(0, []byte("root"), []oid.OID{live[0]})
	must(err)

	var garbage []oid.OID
	for i := 0; i < 120; i++ {
		o, err := tx.Create(1, []byte(fmt.Sprintf("garbage-%03d", i)), nil)
		must(err)
		garbage = append(garbage, o)
	}
	for i, g := range garbage {
		// Garbage cycle edges plus edges into the live list.
		must(tx.InsertRef(g, garbage[(i+1)%len(garbage)]))
		if i%10 == 0 {
			must(tx.InsertRef(g, live[i%len(live)]))
		}
	}
	must(tx.Commit())

	st, _ := d.Store().PartitionStats(1)
	fmt.Printf("from-space: %d objects (%d live, %d garbage), %d pages\n",
		st.Objects, len(live), len(garbage), st.Pages)

	// Collect: evacuate live objects of partition 1 into partition 2,
	// reclaim everything else, drop partition 1.
	stats, err := reorg.CollectPartition(d, 1, 2, reorg.Options{Mode: reorg.ModeIRA})
	must(err)
	fmt.Printf("collector: traversed %d live objects, evacuated %d, reclaimed %d garbage objects\n",
		stats.Traversed, stats.Migrated, stats.Garbage)
	if d.Store().HasPartition(1) {
		panic("from-space still exists")
	}
	st2, _ := d.Store().PartitionStats(2)
	fmt.Printf("to-space: %d objects in %d densely packed pages\n", st2.Objects, st2.Pages)

	// The live list is fully intact, at new addresses, via physical refs.
	rep, err := check.Verify(d, []oid.OID{root})
	must(err)
	must(rep.Err())
	if rep.Reachable != len(live)+1 {
		panic(fmt.Sprintf("reachable = %d, want %d", rep.Reachable, len(live)+1))
	}
	tx2, err := d.Begin()
	must(err)
	cur, count := root, 0
	for {
		obj, err := tx2.Read(cur)
		must(err)
		if len(obj.Refs) == 0 {
			break
		}
		cur = obj.Refs[0]
		count++
	}
	must(tx2.Commit())
	fmt.Printf("walked the live list end to end: %d hops, all references valid\n", count)
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
