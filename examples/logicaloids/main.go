// Logical OIDs: the indirection-table mode.
//
// examples/quickstart shows the paper's headline setting, where
// references are physical addresses and reorganization must rewrite
// every parent of a migrated object. This example pins the other mode:
// references hold logical OIDs that a per-partition indirection table
// (internal/oidmap) maps to storage addresses. Reorganization then
// swings one map entry per migrated object — parents are untouched —
// and an entire partition can move to a different store backing while
// readers keep the OIDs they already hold.
package main

import (
	"fmt"

	"repro/internal/db"
	"repro/internal/oid"
	"repro/internal/reorg"
)

func main() {
	// A disk-backed database (DataDir empty = temp dir removed on
	// Close) with the indirection table switched on. LogicalOIDs set
	// explicitly wins over the REORG_LOGICAL_OID environment sweep.
	cfg := db.DefaultConfig()
	cfg.DiskBacked = true
	cfg.LogicalOIDs = true
	d := db.Open(cfg)
	defer d.Close()

	// Partition 0 holds the persistent root; partition 1 the data.
	must(d.CreatePartition(0))
	must(d.CreatePartition(1))

	tx, err := d.Begin()
	must(err)

	// Create returns LOGICAL OIDs here: stable names drawn from a
	// per-partition sequence, not addresses. The map entry recording
	// where each body lives is WAL-logged with the create itself.
	leaf, err := tx.Create(1, []byte("leaf"), nil)
	must(err)
	mid, err := tx.Create(1, []byte("mid"), []oid.OID{leaf})
	must(err)
	root, err := tx.Create(0, []byte("root"), []oid.OID{mid})
	must(err)
	must(tx.Commit())

	phys := func(l oid.OID) oid.OID {
		p, ok := d.OIDMap().Resolve(l)
		if !ok {
			panic(fmt.Sprintf("no mapping for %v", l))
		}
		return p
	}
	midBefore, leafBefore := phys(mid), phys(leaf)
	fmt.Printf("before reorganization: mid = %v (body at %v), leaf = %v (body at %v)\n",
		mid, midBefore, leaf, leafBefore)

	// Reorganize partition 1 on-line. Same IRA as quickstart, but with
	// the table interposed a migration is one map-entry swing: note
	// ParentsUpdated below.
	r := reorg.New(d, 1, reorg.Options{Mode: reorg.ModeIRA})
	must(r.Run())
	fmt.Printf("reorganization: migrated %d objects, updated %d parent references\n",
		r.Stats().Migrated, r.Stats().ParentsUpdated)

	// Identity stability: the root still holds the SAME logical OIDs,
	// even though the bodies moved.
	tx2, err := d.Begin()
	must(err)
	rootObj, err := tx2.Read(root)
	must(err)
	if rootObj.Refs[0] != mid {
		panic("logical OID changed across reorganization")
	}
	must(tx2.Commit())
	fmt.Printf("after reorganization:  mid = %v (body at %v), leaf = %v (body at %v)\n",
		mid, phys(mid), leaf, phys(leaf))
	if phys(mid) == midBefore && phys(leaf) == leafBefore {
		panic("bodies did not move")
	}

	// Cross-store move: evacuate partition 1's bodies into a new
	// pool-managed partition 9 and drop the old store partition. The
	// logical identities (and partition 1's reference table) survive —
	// readers holding OIDs into partition 1 never notice.
	st, err := reorg.MigrateStore(d, 1, 9, true, reorg.Options{Mode: reorg.ModeIRA})
	must(err)
	fmt.Printf("store move: migrated %d bodies into partition 9, updated %d parents\n",
		st.Migrated, st.ParentsUpdated)

	tx3, err := d.Begin()
	must(err)
	midObj, err := tx3.Read(mid)
	must(err)
	leafObj, err := tx3.Read(leaf)
	must(err)
	must(tx3.Commit())
	fmt.Printf("after store move:      mid = %v (body at %v), leaf = %v (body at %v)\n",
		mid, phys(mid), leaf, phys(leaf))
	fmt.Printf("payloads intact: %q -> %q -> %q\n",
		rootObj.Payload, midObj.Payload, leafObj.Payload)
	if phys(mid).Partition() != 9 || phys(leaf).Partition() != 9 {
		panic("bodies did not land in partition 9")
	}
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
