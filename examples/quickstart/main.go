// Quickstart: the smallest end-to-end use of the library.
//
// It opens an object database, stores a few objects holding physical
// references to each other, migrates the partition they live in with the
// on-line Incremental Reorganization Algorithm (IRA), and shows that the
// graph is intact at new physical addresses.
package main

import (
	"fmt"

	"repro/internal/db"
	"repro/internal/oid"
	"repro/internal/reorg"
)

func main() {
	// Open a database: strict two-phase locking, write-ahead logging,
	// 8 KiB slotted pages. This example demonstrates PHYSICAL references
	// — the paper's headline setting, where reorganization must rewrite
	// parents — so it pins that mode regardless of REORG_LOGICAL_OID
	// (see examples/logicaloids for the indirection-table mode).
	cfg := db.DefaultConfig()
	cfg.PhysicalOIDs = true
	d := db.Open(cfg)
	defer d.Close()

	// Partition 0 holds the persistent root; partition 1 the data.
	must(d.CreatePartition(0))
	must(d.CreatePartition(1))

	// Everything happens in transactions.
	tx, err := d.Begin()
	must(err)

	// Objects hold a payload and outgoing references. References are
	// PHYSICAL: an OID is the object's actual (partition, page, slot)
	// address.
	leaf, err := tx.Create(1, []byte("leaf"), nil)
	must(err)
	mid, err := tx.Create(1, []byte("mid"), []oid.OID{leaf})
	must(err)
	root, err := tx.Create(0, []byte("root"), []oid.OID{mid})
	must(err)
	must(tx.Commit())

	fmt.Printf("before reorganization: mid at %v, leaf at %v\n", mid, leaf)

	// Reorganize partition 1 on-line. (Here nothing else is running; see
	// examples/compaction for concurrent transactions.) IRA finds each
	// object's parents and rewrites their references atomically.
	r := reorg.New(d, 1, reorg.Options{Mode: reorg.ModeIRA})
	must(r.Run())
	fmt.Printf("reorganization: migrated %d objects, updated %d parent references\n",
		r.Stats().Migrated, r.Stats().ParentsUpdated)

	// Follow the graph from the root: the addresses changed, the graph
	// did not.
	tx2, err := d.Begin()
	must(err)
	rootObj, err := tx2.Read(root)
	must(err)
	newMid := rootObj.Refs[0]
	midObj, err := tx2.Read(newMid)
	must(err)
	newLeaf := midObj.Refs[0]
	leafObj, err := tx2.Read(newLeaf)
	must(err)
	must(tx2.Commit())

	fmt.Printf("after reorganization:  mid at %v, leaf at %v\n", newMid, newLeaf)
	fmt.Printf("payloads intact: %q -> %q -> %q\n",
		rootObj.Payload, midObj.Payload, leafObj.Payload)
	if newMid == mid || newLeaf == leaf {
		panic("objects did not move")
	}
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
