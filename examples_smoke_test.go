package repro

import (
	"context"
	"os/exec"
	"testing"
	"time"
)

// TestExamplesRun compiles and runs every example program end to end.
// The examples are the package's front door — each one panics on any
// internal inconsistency, so "go run exits 0" is a real assertion, and
// this test keeps them compiling (they are separate main packages, so
// `go build ./...` alone does not prove they still run).
//
// The examples run serially after one shared build pass: they share
// almost their whole dependency graph, so warming the build cache once
// keeps the per-example `go run` cheap even on a single-core runner.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("each example builds and runs a small database")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 8*time.Minute)
	defer cancel()
	if out, err := exec.CommandContext(ctx, "go", "build", "./examples/...").CombinedOutput(); err != nil {
		t.Fatalf("examples do not build: %v\n%s", err, out)
	}

	examples := []string{"quickstart", "clustering", "compaction", "gc", "schemaevolution"}
	for _, name := range examples {
		t.Run(name, func(t *testing.T) {
			runCtx, cancel := context.WithTimeout(ctx, 2*time.Minute)
			defer cancel()
			out, err := exec.CommandContext(runCtx, "go", "run", "./examples/"+name).CombinedOutput()
			if runCtx.Err() != nil {
				t.Fatalf("example %s timed out:\n%s", name, out)
			}
			if err != nil {
				t.Fatalf("example %s failed: %v\n%s", name, err, out)
			}
			if len(out) == 0 {
				t.Fatalf("example %s printed nothing", name)
			}
		})
	}
}
